// Package interest implements interest management for the cloud VR
// classroom — the mechanism that makes the paper's "thousands of remote
// users" (challenge C2) affordable. Instead of broadcasting every
// participant's every update to every receiver (O(n²) fan-out), each
// receiver subscribes to a spatially and socially relevant subset at
// distance-scaled rates.
package interest

import (
	"math"
	"slices"

	"metaclass/internal/mathx"
	"metaclass/internal/protocol"
)

// Grid is a 2D spatial hash over the classroom floor plane (X/Z), the
// standard area-of-interest index. Not safe for concurrent use.
type Grid struct {
	cell float64
	pos  map[protocol.ParticipantID]mathx.Vec3
	grid map[[2]int32][]protocol.ParticipantID

	// Occupied-cell bounding box, maintained incrementally so queries scan
	// min(query square, occupied box) instead of the full query square — a
	// 60m cull radius over 4m cells is a 31×31 = 961-cell square, while a
	// classroom occupies ~16 cells. Inserts extend the box; deleting a
	// boundary cell marks it dirty for lazy recomputation on the next query.
	bmin, bmax  [2]int32
	boundsDirty bool
}

// NewGrid creates a grid with the given cell size in meters (default 4).
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 4
	}
	return &Grid{
		cell: cellSize,
		pos:  make(map[protocol.ParticipantID]mathx.Vec3),
		grid: make(map[[2]int32][]protocol.ParticipantID),
	}
}

func (g *Grid) key(p mathx.Vec3) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Z / g.cell))}
}

// Update inserts or moves an entity.
func (g *Grid) Update(id protocol.ParticipantID, p mathx.Vec3) {
	if old, ok := g.pos[id]; ok {
		ok2 := g.key(old)
		k2 := g.key(p)
		if ok2 == k2 {
			g.pos[id] = p
			return
		}
		g.removeFromCell(ok2, id)
	}
	g.pos[id] = p
	k := g.key(p)
	if cell := g.grid[k]; len(cell) == 0 {
		if len(g.grid) == 0 {
			g.bmin, g.bmax = k, k
			g.boundsDirty = false
		} else {
			g.bmin[0] = min(g.bmin[0], k[0])
			g.bmin[1] = min(g.bmin[1], k[1])
			g.bmax[0] = max(g.bmax[0], k[0])
			g.bmax[1] = max(g.bmax[1], k[1])
		}
	}
	g.grid[k] = append(g.grid[k], id)
}

// Remove deletes an entity. Removing an absent entity is a no-op.
func (g *Grid) Remove(id protocol.ParticipantID) {
	p, ok := g.pos[id]
	if !ok {
		return
	}
	g.removeFromCell(g.key(p), id)
	delete(g.pos, id)
}

func (g *Grid) removeFromCell(k [2]int32, id protocol.ParticipantID) {
	cell := g.grid[k]
	for i, v := range cell {
		if v == id {
			cell[i] = cell[len(cell)-1]
			cell = cell[:len(cell)-1]
			break
		}
	}
	if len(cell) == 0 {
		delete(g.grid, k)
		if k[0] == g.bmin[0] || k[0] == g.bmax[0] || k[1] == g.bmin[1] || k[1] == g.bmax[1] {
			g.boundsDirty = true
		}
	} else {
		g.grid[k] = cell
	}
}

// bounds returns the occupied-cell bounding box, recomputing it when a
// boundary cell was emptied since the last query. ok is false for an empty
// grid.
func (g *Grid) bounds() (bmin, bmax [2]int32, ok bool) {
	if len(g.grid) == 0 {
		return bmin, bmax, false
	}
	if g.boundsDirty {
		first := true
		for k := range g.grid {
			if first {
				g.bmin, g.bmax = k, k
				first = false
				continue
			}
			g.bmin[0] = min(g.bmin[0], k[0])
			g.bmin[1] = min(g.bmin[1], k[1])
			g.bmax[0] = max(g.bmax[0], k[0])
			g.bmax[1] = max(g.bmax[1], k[1])
		}
		g.boundsDirty = false
	}
	return g.bmin, g.bmax, true
}

// Len returns the number of indexed entities.
func (g *Grid) Len() int { return len(g.pos) }

// Position returns an entity's indexed position.
func (g *Grid) Position(id protocol.ParticipantID) (mathx.Vec3, bool) {
	p, ok := g.pos[id]
	return p, ok
}

// QueryRadius returns all entities within radius of center (2D, X/Z plane),
// sorted by ID for determinism. The center entity itself is included if
// indexed and in range.
func (g *Grid) QueryRadius(center mathx.Vec3, radius float64) []protocol.ParticipantID {
	return g.Neighbors(center, radius, nil)
}

// Neighbors appends all entities within radius of center (2D, X/Z plane) to
// buf and returns the extended slice, sorted by ID for determinism. The
// center entity itself is included if indexed and in range. Passing a reused
// buf (sliced to length zero) makes repeated queries allocation-free; the
// spatial hash visits only the cells overlapping the query square, so cost
// scales with local density instead of total population.
func (g *Grid) Neighbors(center mathx.Vec3, radius float64, buf []protocol.ParticipantID) []protocol.ParticipantID {
	if radius < 0 {
		return buf
	}
	bmin, bmax, ok := g.bounds()
	if !ok {
		return buf
	}
	base := len(buf)
	r2 := radius * radius
	lo := g.key(center.Sub(mathx.V3(radius, 0, radius)))
	hi := g.key(center.Add(mathx.V3(radius, 0, radius)))
	lo[0] = max(lo[0], bmin[0])
	lo[1] = max(lo[1], bmin[1])
	hi[0] = min(hi[0], bmax[0])
	hi[1] = min(hi[1], bmax[1])
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cz := lo[1]; cz <= hi[1]; cz++ {
			for _, id := range g.grid[[2]int32{cx, cz}] {
				p := g.pos[id]
				dx, dz := p.X-center.X, p.Z-center.Z
				if dx*dx+dz*dz <= r2 {
					buf = append(buf, id)
				}
			}
		}
	}
	slices.Sort(buf[base:])
	return buf
}

// Tier classifies how relevant a source entity is to a receiver.
type Tier uint8

// Relevance tiers.
const (
	TierFocus   Tier = iota // near or socially pinned: full rate, fine LoD
	TierNear                // same area: half rate
	TierFar                 // visible across the room: quarter rate
	TierAmbient             // crowd backdrop: 1/8 rate, impostor LoD
	TierCulled              // outside interest: no updates
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierFocus:
		return "focus"
	case TierNear:
		return "near"
	case TierFar:
		return "far"
	case TierAmbient:
		return "ambient"
	default:
		return "culled"
	}
}

// RateDivisor returns the per-tier tick decimation: an update is sent on
// ticks where tick % divisor == 0.
func (t Tier) RateDivisor() uint64 {
	switch t {
	case TierFocus:
		return 1
	case TierNear:
		return 2
	case TierFar:
		return 4
	case TierAmbient:
		return 8
	default:
		return 0 // culled: never
	}
}

// Policy maps receiver-to-source geometry (and social pins) to tiers.
type Policy struct {
	// FocusRadius, NearRadius, FarRadius are the tier boundaries in meters
	// (defaults 3/8/20). Beyond FarRadius but inside CullRadius is ambient.
	FocusRadius, NearRadius, FarRadius float64
	// CullRadius drops sources entirely (default 60).
	CullRadius float64
	// Pinned sources (the lecturer, the current speaker) are always focus.
	Pinned map[protocol.ParticipantID]bool
}

// NewPolicy returns a policy with classroom-scale defaults.
func NewPolicy() *Policy {
	return &Policy{
		FocusRadius: 3, NearRadius: 8, FarRadius: 20, CullRadius: 60,
		Pinned: make(map[protocol.ParticipantID]bool),
	}
}

// Pin marks a source as always-focus for every receiver (e.g. the educator:
// everyone watches the lecturer regardless of distance).
func (p *Policy) Pin(id protocol.ParticipantID) { p.Pinned[id] = true }

// Unpin removes a pin.
func (p *Policy) Unpin(id protocol.ParticipantID) { delete(p.Pinned, id) }

// Classify returns the tier of source for a receiver at the given distance.
// It delegates to ClassifySq so the two can never disagree at a radius
// boundary: comparing d against r and d*d against r*r round differently in
// float64, and a source classified TierNear by one path and TierFar by the
// other would decimate on different ticks depending on which caller asked.
func (p *Policy) Classify(source protocol.ParticipantID, distance float64) Tier {
	return p.ClassifySq(source, distance*distance)
}

// ClassifySq is Classify taking the squared distance, letting hot fan-out
// paths skip the sqrt of a Euclidean distance computation entirely.
func (p *Policy) ClassifySq(source protocol.ParticipantID, distSq float64) Tier {
	if p.Pinned[source] {
		return TierFocus
	}
	switch {
	case distSq <= p.FocusRadius*p.FocusRadius:
		return TierFocus
	case distSq <= p.NearRadius*p.NearRadius:
		return TierNear
	case distSq <= p.FarRadius*p.FarRadius:
		return TierFar
	case distSq <= p.CullRadius*p.CullRadius:
		return TierAmbient
	default:
		return TierCulled
	}
}

// Phase returns the deterministic decimation phase of a source: a fixed
// integer hash of its ID (splitmix64 finalizer). A tier with divisor d sends
// source id on ticks where tick % d == Phase(id) % d, so each tier's traffic
// spreads evenly across the divisor's ticks instead of every Ambient source
// bursting together on tick%8 == 0. The phase depends only on the ID — no
// clock, no randomness — so replication stays byte-identical across runs and
// worker counts.
func Phase(source protocol.ParticipantID) uint64 {
	x := uint64(source) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShouldSend reports whether source (in tier t for some receiver) should be
// included in the update sent at the given tick. Sends are decimated to the
// tier's RateDivisor and phase-staggered per source by Phase.
func ShouldSend(t Tier, source protocol.ParticipantID, tick uint64) bool {
	d := t.RateDivisor()
	if d == 0 {
		return false
	}
	return tick%d == Phase(source)%d
}

// Set is a per-receiver cache of the sources whose update is due at the
// current tick, rebuilt at most once per tick from one spatial query. It
// replaces an all-pairs distance test per (receiver, source) with a
// Neighbors query plus squared-distance classification, then answers each
// source in O(1). Servers keep one Set per subscribed client.
type Set struct {
	allowed  map[protocol.ParticipantID]bool
	allowAll bool
	recv     protocol.ParticipantID
	tick     uint64
	// scratch is the set-owned neighbor buffer RefreshOwned queries into.
	// Owning it here (instead of a buffer shared across receivers) is what
	// lets the parallel tick refresh many clients' sets concurrently: each
	// refresh touches only its own set's state and reads the shared grid.
	scratch []protocol.ParticipantID
}

// NewSet returns an empty, ready-to-refresh set.
func NewSet() *Set {
	return &Set{allowed: make(map[protocol.ParticipantID]bool)}
}

// Reset clears the set for reuse by another receiver (the node runtime pools
// per-client sets across join/leave churn). The allowed map keeps its
// capacity; the tick marker rewinds so the next Refresh rebuilds.
func (s *Set) Reset() {
	clear(s.allowed)
	s.allowAll = false
	s.recv = 0
	s.tick = 0
}

// RefreshOwned is Refresh using the set's own neighbor buffer. Distinct sets
// may be refreshed concurrently (each touches only its own state; the grid
// and policy are read-only), which is how the parallel tick shards per-client
// classification across workers. Like Refresh it rebuilds at most once per
// tick, so a set pre-refreshed on the pool answers the replication filter's
// later call for the same tick from cache.
func (s *Set) RefreshOwned(g *Grid, p *Policy, recv protocol.ParticipantID, tick uint64) {
	s.scratch = s.Refresh(g, p, recv, tick, s.scratch)
}

// Refresh rebuilds the set for receiver recv at tick, at most once per tick
// (ticks start at 1; zero means never built). While recv is not indexed in
// g the set admits everything — a just-joined receiver needs the full world
// until placed. The receiver itself is never admitted: `Allows(g, recv) ==
// false` is part of the contract, even in admit-everything mode and even
// when recv is pinned. scratch is the caller's reusable neighbor buffer;
// the grown buffer is returned for the caller to keep.
func (s *Set) Refresh(g *Grid, p *Policy, recv protocol.ParticipantID, tick uint64, scratch []protocol.ParticipantID) []protocol.ParticipantID {
	s.recv = recv
	if s.tick == tick {
		return scratch
	}
	s.tick = tick
	recvPos, ok := g.Position(recv)
	if !ok {
		s.allowAll = true
		return scratch
	}
	s.allowAll = false
	clear(s.allowed)
	scratch = g.Neighbors(recvPos, p.CullRadius, scratch[:0])
	for _, id := range scratch {
		if id == recv { // Neighbors includes the query center
			continue
		}
		pos, _ := g.Position(id)
		dx, dz := pos.X-recvPos.X, pos.Z-recvPos.Z
		if ShouldSend(p.ClassifySq(id, dx*dx+dz*dz), id, tick) {
			s.allowed[id] = true
		}
	}
	// Pinned sources are focus-tier regardless of distance (divisor 1, so no
	// decimation check). A pinned receiver still never receives itself.
	for id := range p.Pinned {
		if id == recv {
			continue
		}
		if _, indexed := g.Position(id); indexed {
			s.allowed[id] = true
		}
	}
	return scratch
}

// Allows reports whether source id should be sent this tick. The receiver
// the set was last refreshed for is never allowed. Other sources not indexed
// in g bypass interest management (the caller cannot place them). Refresh
// must have been called for the current tick.
func (s *Set) Allows(g *Grid, id protocol.ParticipantID) bool {
	if id == s.recv {
		return false
	}
	if s.allowAll {
		return true
	}
	if _, indexed := g.Position(id); !indexed {
		return true
	}
	return s.allowed[id]
}

// Plan computes, for a receiver at recv, the set of source IDs to include at
// this tick. sources must be indexed in g. The receiver itself is excluded.
func Plan(g *Grid, p *Policy, recv protocol.ParticipantID, recvPos mathx.Vec3, tick uint64) []protocol.ParticipantID {
	candidates := g.QueryRadius(recvPos, p.CullRadius)
	out := make([]protocol.ParticipantID, 0, len(candidates))
	for _, id := range candidates {
		if id == recv {
			continue
		}
		pos, _ := g.Position(id)
		dx, dz := pos.X-recvPos.X, pos.Z-recvPos.Z
		if ShouldSend(p.ClassifySq(id, dx*dx+dz*dz), id, tick) {
			out = append(out, id)
		}
	}
	// Pinned sources are focus even outside the cull radius. A pinned source
	// inside the cull radius already classified TierFocus above (divisor 1,
	// sent every tick), so membership in the sorted candidates slice — not a
	// scan of out — is the dedup test.
	for id := range p.Pinned {
		if id == recv {
			continue
		}
		if _, ok := g.Position(id); !ok {
			continue
		}
		if _, inRadius := slices.BinarySearch(candidates, id); inRadius {
			continue
		}
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}
