// Command metaclass runs the experiment suite that reproduces the paper's
// figures and §III-C claims (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	metaclass -list
//	metaclass -exp E3 [-seed 7]
//	metaclass            # run everything
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"metaclass/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment to run (E1..E14); empty runs all")
		seed = flag.Int64("seed", 42, "simulation seed")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if err := run(*exp, *seed, *list); err != nil {
		fmt.Fprintln(os.Stderr, "metaclass:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64, list bool) error {
	all := experiments.All()
	if list {
		for _, r := range all {
			fmt.Println(r.ID)
		}
		return nil
	}
	want := strings.ToUpper(strings.TrimSpace(exp))
	ran := false
	for _, r := range all {
		if want != "" && r.ID != want {
			continue
		}
		table := r.Run(seed)
		fmt.Println(table.String())
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (use -list)", exp)
	}
	return nil
}
