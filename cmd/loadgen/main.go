// Command loadgen drives a classroomd server with a swarm of real TCP
// clients: each publishes a scripted pose stream and measures how stale the
// other participants' avatars arrive — the paper's C1 metric measured over a
// real network stack. With -churn, clients also cycle through join/leave
// storms (the E11 workload): each client disconnects after its stay and
// rejoins, and loadgen reports the onboarding latency (connect to first
// replicated snapshot) alongside avatar staleness.
//
// Usage:
//
// With -soak N, loadgen instead runs N compressed churn epochs — every
// client joins, publishes for its stay, and leaves; then a forced GC and a
// post-GC heap sample — and exits non-zero unless the final-quartile heap is
// flat against the epoch-3 baseline. Combined with -serve the room runs
// in-process, so the verdict covers server-side leaks too; against a remote
// -addr it covers only the client side.
//
// With -geo, loadgen instead replays the geo deployment schedule — staggered
// joins across three regions, k-center relay placement, a live roam of both
// far cohorts (session handoff over real sockets), and a relay drain — on an
// in-process TCP fabric, then exits non-zero unless every client replica
// converged byte-for-byte to the cloud world, the expected migrations all
// happened, and no frame is left alive.
//
//	loadgen -addr 127.0.0.1:7480 -clients 50 -duration 30s -rate 20
//	loadgen -serve -clients 20 -duration 10s -churn 2s   # self-hosted churn run
//	loadgen -serve -clients 8 -soak 20 -churn 300ms      # compressed soak gate
//	loadgen -geo                                         # geo handoff verdict over TCP
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"metaclass/internal/mathx"
	"metaclass/internal/metrics"
	"metaclass/internal/protocol"
	"metaclass/internal/trace"
	"metaclass/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7480", "classroomd address")
		clients  = flag.Int("clients", 10, "number of concurrent clients")
		duration = flag.Duration("duration", 30*time.Second, "test duration")
		rate     = flag.Float64("rate", 20, "pose publish rate per client (Hz)")
		churn    = flag.Duration("churn", 0, "client stay duration before leaving and rejoining (0 = no churn)")
		serve    = flag.Bool("serve", false, "host an in-process room on 127.0.0.1:0 and drive it (self-contained smoke)")
		soak     = flag.Int("soak", 0, "run N compressed churn epochs with a post-GC heap sample each; exit non-zero unless flat")
		geoMode  = flag.Bool("geo", false, "replay the geo placement/roam/drain schedule over an in-process TCP fabric; exit non-zero unless converged and leak-free")
	)
	flag.Parse()
	if *geoMode {
		if err := runGeo(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	target := *addr
	if *serve {
		room, err := transport.ListenRoom(transport.RoomConfig{Addr: "127.0.0.1:0"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer func() { _ = room.Close() }()
		target = room.Addr()
		fmt.Printf("loadgen: serving in-process room on %s\n", target)
	}
	if *soak > 0 {
		if err := runSoak(target, *clients, *rate, *churn, *soak); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(target, *clients, *duration, *rate, *churn); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// runSoak is the compressed soak gate over real TCP: `epochs` rounds of the
// full churn cycle — every client joins, publishes for `stay`, leaves — with
// a forced GC and a post-GC HeapAlloc sample after each round. A deployment
// that can run for a week shows a flat post-GC heap line; a per-session leak
// of even a few KB climbs straight through the 10% tolerance.
func runSoak(addr string, clients int, rate float64, stay time.Duration, epochs int) error {
	if stay <= 0 {
		stay = 300 * time.Millisecond
	}
	fmt.Printf("loadgen: soak %d epochs x %d clients (stay %v at %.0f Hz) -> %s\n",
		epochs, clients, stay, rate, addr)
	var (
		age      metrics.SafeHistogram
		onboard  metrics.SafeHistogram
		received atomic.Uint64
		errs     atomic.Uint64
	)
	start := time.Now()
	heaps := make([]uint64, 0, epochs)
	var ms runtime.MemStats
	for e := 0; e < epochs; e++ {
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if err := runClient(addr, protocol.ParticipantID(id+1), rate, start,
					time.Now().Add(stay), &age, &onboard, &received); err != nil {
					errs.Add(1)
				}
			}(i)
		}
		wg.Wait()
		runtime.GC()
		runtime.ReadMemStats(&ms)
		heaps = append(heaps, ms.HeapAlloc)
		fmt.Printf("epoch %2d/%d: post-GC heap %5d KB\n", e+1, epochs, ms.HeapAlloc/1024)
	}
	fmt.Printf("done: sessions=%d updates=%d errors=%d\n",
		uint64(epochs*clients), received.Load(), errs.Load())
	if snap := onboard.Snapshot(); snap.Count() > 0 {
		fmt.Printf("onboarding: p50=%v p95=%v max=%v\n",
			snap.P50().Round(time.Millisecond), snap.P95().Round(time.Millisecond),
			snap.Max().Round(time.Millisecond))
	}
	if len(heaps) < 4 {
		fmt.Println("soak: too few epochs for a flatness verdict (need >= 4)")
		return nil
	}
	base := heaps[2]
	const slack = 512 << 10
	lim := uint64(float64(base)*1.10) + slack
	flat := true
	for _, h := range heaps[len(heaps)-max(1, len(heaps)/4):] {
		if h > lim {
			flat = false
		}
	}
	if !flat {
		return fmt.Errorf("soak NOT FLAT: final-quartile post-GC heap exceeds epoch-3 baseline %d KB +10%%+512KB", base/1024)
	}
	fmt.Printf("soak FLAT: final-quartile post-GC heap within 10%%+512KB of epoch-3 baseline %d KB\n", base/1024)
	return nil
}

func run(addr string, clients int, duration time.Duration, rate float64, churn time.Duration) error {
	fmt.Printf("loadgen: %d clients -> %s for %v at %.0f Hz (churn stay %v)\n",
		clients, addr, duration, rate, churn)
	var (
		age      metrics.SafeHistogram
		onboard  metrics.SafeHistogram
		wg       sync.WaitGroup
		mu       sync.Mutex
		received atomic.Uint64
		sessions atomic.Uint64
		errs     int
	)
	start := time.Now()
	deadline := start.Add(duration)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Without churn one session spans the whole run; with churn the
			// client leaves after its stay and rejoins until the deadline.
			for sess := 0; ; sess++ {
				if time.Now().After(deadline) {
					return
				}
				stop := deadline
				if churn > 0 {
					if s := time.Now().Add(churn); s.Before(stop) {
						stop = s
					}
				}
				sessions.Add(1)
				err := runClient(addr, protocol.ParticipantID(id+1), rate, start, stop,
					&age, &onboard, &received)
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					// Back off before rejoining so an unreachable server is
					// retried, not hammered in a busy loop.
					time.Sleep(250 * time.Millisecond)
				}
				if churn <= 0 {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("done: sessions=%d updates=%d errors=%d\n", sessions.Load(), received.Load(), errs)
	if snap := age.Snapshot(); snap.Count() > 0 {
		fmt.Printf("avatar age: p50=%v p95=%v p99=%v max=%v (paper threshold: 100ms)\n",
			snap.P50().Round(time.Millisecond), snap.P95().Round(time.Millisecond),
			snap.P99().Round(time.Millisecond), snap.Max().Round(time.Millisecond))
	}
	if snap := onboard.Snapshot(); snap.Count() > 0 {
		fmt.Printf("onboarding: p50=%v p95=%v max=%v (connect -> first snapshot)\n",
			snap.P50().Round(time.Millisecond), snap.P95().Round(time.Millisecond),
			snap.Max().Round(time.Millisecond))
	}
	return nil
}

func runClient(addr string, id protocol.ParticipantID, rate float64,
	start, deadline time.Time, age, onboard *metrics.SafeHistogram, received *atomic.Uint64) error {
	joinedAt := time.Now()
	conn, err := transport.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.WriteMessage(&protocol.Hello{
		Participant: id, Role: protocol.RoleLearner, Name: fmt.Sprintf("load-%d", id),
	}); err != nil {
		return err
	}

	script := trace.Seated{
		Anchor: mathx.V3(float64(id%16)*1.2, 0, float64(id/16)*1.2),
		Phase:  rand.New(rand.NewSource(int64(id))).Float64() * 6,
	}

	var wg sync.WaitGroup
	wg.Add(1)
	// Publisher.
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer ticker.Stop()
		seq := uint32(0)
		for now := range ticker.C {
			if now.After(deadline) {
				_ = conn.WriteMessage(&protocol.Leave{Participant: id})
				_ = conn.Close()
				return
			}
			seq++
			elapsed := now.Sub(start)
			p := script.PoseAt(elapsed)
			_ = conn.WriteMessage(&protocol.PoseUpdate{
				Participant: id, Seq: seq, CapturedAt: elapsed,
				Pose: protocol.QuantizePose(p.Position, p.Rotation),
				VelMMS: [3]int64{
					int64(p.Velocity.X * 1000), int64(p.Velocity.Y * 1000), int64(p.Velocity.Z * 1000),
				},
			})
		}
	}()

	// Receiver: measure onboarding and entity freshness, acking replication.
	synced := false
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			break
		}
		elapsed := time.Since(start)
		switch m := msg.(type) {
		case *protocol.Snapshot:
			if !synced {
				synced = true
				onboard.Observe(time.Since(joinedAt))
			}
			for _, e := range m.Entities {
				age.Observe(elapsed - e.CapturedAt)
				received.Add(1)
			}
			_ = conn.WriteMessage(&protocol.Ack{Participant: id, Tick: m.Tick})
		case *protocol.Delta:
			if !synced {
				synced = true
				onboard.Observe(time.Since(joinedAt))
			}
			for _, e := range m.Changed {
				age.Observe(elapsed - e.CapturedAt)
				received.Add(1)
			}
			_ = conn.WriteMessage(&protocol.Ack{Participant: id, Tick: m.Tick})
		}
	}
	wg.Wait()
	return nil
}
