// Command loadgen drives a classroomd server with a swarm of real TCP
// clients: each publishes a scripted pose stream and measures how stale the
// other participants' avatars arrive — the paper's C1 metric measured over a
// real network stack.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7480 -clients 50 -duration 30s -rate 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"metaclass/internal/mathx"
	"metaclass/internal/metrics"
	"metaclass/internal/protocol"
	"metaclass/internal/trace"
	"metaclass/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7480", "classroomd address")
		clients  = flag.Int("clients", 10, "number of concurrent clients")
		duration = flag.Duration("duration", 30*time.Second, "test duration")
		rate     = flag.Float64("rate", 20, "pose publish rate per client (Hz)")
	)
	flag.Parse()
	if err := run(*addr, *clients, *duration, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(addr string, clients int, duration time.Duration, rate float64) error {
	fmt.Printf("loadgen: %d clients -> %s for %v at %.0f Hz\n", clients, addr, duration, rate)
	var (
		age      metrics.SafeHistogram
		wg       sync.WaitGroup
		mu       sync.Mutex
		received atomic.Uint64
		errs     int
	)
	start := time.Now()
	deadline := start.Add(duration)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := runClient(addr, protocol.ParticipantID(id+1), rate, start, deadline, &age, &received); err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	snap := age.Snapshot()
	fmt.Printf("done: updates=%d errors=%d\n", received.Load(), errs)
	if snap.Count() > 0 {
		fmt.Printf("avatar age: p50=%v p95=%v p99=%v max=%v (paper threshold: 100ms)\n",
			snap.P50().Round(time.Millisecond), snap.P95().Round(time.Millisecond),
			snap.P99().Round(time.Millisecond), snap.Max().Round(time.Millisecond))
	}
	return nil
}

func runClient(addr string, id protocol.ParticipantID, rate float64,
	start, deadline time.Time, age *metrics.SafeHistogram, received *atomic.Uint64) error {
	conn, err := transport.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.WriteMessage(&protocol.Hello{
		Participant: id, Role: protocol.RoleLearner, Name: fmt.Sprintf("load-%d", id),
	}); err != nil {
		return err
	}

	script := trace.Seated{
		Anchor: mathx.V3(float64(id%16)*1.2, 0, float64(id/16)*1.2),
		Phase:  rand.New(rand.NewSource(int64(id))).Float64() * 6,
	}

	var wg sync.WaitGroup
	wg.Add(1)
	// Publisher.
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer ticker.Stop()
		seq := uint32(0)
		for now := range ticker.C {
			if now.After(deadline) {
				_ = conn.WriteMessage(&protocol.Leave{Participant: id})
				_ = conn.Close()
				return
			}
			seq++
			elapsed := now.Sub(start)
			p := script.PoseAt(elapsed)
			_ = conn.WriteMessage(&protocol.PoseUpdate{
				Participant: id, Seq: seq, CapturedAt: elapsed,
				Pose: protocol.QuantizePose(p.Position, p.Rotation),
				VelMMS: [3]int64{
					int64(p.Velocity.X * 1000), int64(p.Velocity.Y * 1000), int64(p.Velocity.Z * 1000),
				},
			})
		}
	}()

	// Receiver: measure entity freshness and ack replication.
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			break
		}
		elapsed := time.Since(start)
		switch m := msg.(type) {
		case *protocol.Snapshot:
			for _, e := range m.Entities {
				age.Observe(elapsed - e.CapturedAt)
				received.Add(1)
			}
			_ = conn.WriteMessage(&protocol.Ack{Participant: id, Tick: m.Tick})
		case *protocol.Delta:
			for _, e := range m.Changed {
				age.Observe(elapsed - e.CapturedAt)
				received.Add(1)
			}
			_ = conn.WriteMessage(&protocol.Ack{Participant: id, Tick: m.Tick})
		}
	}
	wg.Wait()
	return nil
}
