package main

import (
	"bytes"
	"fmt"
	"time"

	"metaclass/internal/geo"
	"metaclass/internal/protocol"
	"metaclass/internal/region"
	"metaclass/internal/vclock"
)

// runGeo replays the geo deployment schedule — staggered joins across three
// regions, greedy k-center placement, a live roam of both far cohorts, and a
// relay drain — over an in-process TCP fabric: every access and backbone
// path is a real loopback socket, every handoff cuts and re-dials real
// connections. The verdict is the same one the E14 golden gates on netsim:
// after quiescing, every client replica must agree byte-for-byte with the
// cloud world (no update lost or duplicated across the handoffs), every
// scheduled migration must have happened, and no frame may be left alive.
func runGeo() error {
	live0 := protocol.LiveFrames()
	fab := geo.NewTCPFabric()
	defer fab.Close()
	sim := vclock.New(3)
	d, err := geo.New(sim, fab, geo.Config{
		Topology:    region.GlobalCampus(),
		CloudRegion: "hk",
		TickHz:      30,
		PublishHz:   30,
	})
	if err != nil {
		return err
	}

	// settle pumps the fabric until the round's traffic — including
	// multi-hop forwards and acks — has fully landed. Without a netsim
	// reference pass to compare counts against, quiet means the pump came
	// back empty several polls in a row (loopback delivery is fast; the
	// sleeps cover reader-goroutine scheduling).
	settle := func() {
		for zeros := 0; zeros < 10; {
			if fab.Pump() == 0 {
				zeros++
				time.Sleep(time.Millisecond)
			} else {
				zeros = 0
			}
		}
	}

	const (
		tick   = time.Second / 30
		rounds = 30
	)
	regions := []region.ID{"kr", "us-east", "sa-poor"}
	if err := d.Start(); err != nil {
		return err
	}
	fmt.Printf("loadgen: geo schedule over TCP loopback — 9 joins, deploy k=2, roam, drain us-east (%d rounds at 30 Hz)\n", rounds)
	for round := 1; round <= rounds; round++ {
		switch {
		case round <= 9:
			id := protocol.ParticipantID(round)
			if _, err := d.Join(id, regions[(round-1)/3]); err != nil {
				return err
			}
		case round == 11:
			placed, err := d.Deploy(2)
			if err != nil {
				return err
			}
			fmt.Printf("round %d: deployed relays %v\n", round, placed)
		case round == 13:
			moved, err := d.Roam()
			if err != nil {
				return err
			}
			if moved != 6 {
				return fmt.Errorf("geo roam moved %d sessions, want 6 (both far cohorts)", moved)
			}
			fmt.Printf("round %d: roamed %d sessions onto their placed relays (live handoffs)\n", round, moved)
		case round == 16:
			if err := d.Drain("us-east"); err != nil {
				return err
			}
			fmt.Printf("round %d: drained the us-east relay\n", round)
		}
		if err := sim.Run(sim.Now() + tick); err != nil {
			return err
		}
		settle()
	}

	// Quiesce: publishers stop, servers keep ticking to flush owed debt and
	// retransmissions, and the loop runs until the convergence audit passes
	// (or times out and reports the failure).
	for _, id := range d.SessionIDs() {
		s, _ := d.Session(id)
		s.VR.Stop()
	}
	deadline := time.Now().Add(30 * time.Second)
	converged := false
	for !converged && !time.Now().After(deadline) {
		if err := sim.Run(sim.Now() + tick); err != nil {
			return err
		}
		settle()
		converged = geoConverged(d)
	}

	migrations := d.Metrics().Counter("geo.migrations").Value()
	roams := d.Metrics().Counter("geo.roams").Value()
	drains := d.Metrics().Counter("geo.drains").Value()
	d.Stop()
	settle()
	fab.Close()
	leaked := protocol.LiveFrames() - live0

	fmt.Printf("geo: converged=%v migrations=%d (roams %d, drains %d) leaked=%d\n",
		converged, migrations, roams, drains, leaked)
	if !converged {
		return fmt.Errorf("geo NOT CONVERGED: a client replica diverged from the cloud world after the handoffs")
	}
	if migrations != 9 {
		return fmt.Errorf("geo performed %d migrations, want 9 (6 roams + 3 drain evictions)", migrations)
	}
	if leaked != 0 {
		return fmt.Errorf("geo leaked %d frames across the run", leaked)
	}
	fmt.Println("geo OK: every replica byte-equal to the cloud world, all 9 handoffs done, zero frames leaked")
	return nil
}

// geoConverged reports whether every session's replica agrees byte-for-byte
// with the cloud world on every entity it should hold (everyone but itself,
// in broadcast mode) and holds nothing else.
func geoConverged(d *geo.Deployment) bool {
	world := d.Cloud().World()
	for _, id := range d.SessionIDs() {
		s, _ := d.Session(id)
		store := s.VR.ReplicaStore()
		for _, eid := range world.IDs() {
			if eid == id {
				continue
			}
			want, _ := world.Get(eid)
			got, ok := store.Get(eid)
			if !ok || got.CapturedAt != want.CapturedAt || got.Pose != want.Pose ||
				got.VelMMS != want.VelMMS || got.Seat != want.Seat ||
				got.Flags != want.Flags || !bytes.Equal(got.Expression, want.Expression) {
				return false
			}
		}
		for _, eid := range store.IDs() {
			if _, ok := world.Get(eid); !ok {
				return false
			}
		}
	}
	return true
}
