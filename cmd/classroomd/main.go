// Command classroomd hosts a real-TCP Metaverse classroom sync room (the
// cloud VR server of Fig. 3 as a single process). Clients join with a Hello,
// publish PoseUpdate streams, and receive interest-free snapshot/delta
// replication of every other participant.
//
// Usage:
//
//	classroomd -addr :7480 -tick 30
//
// Pair with cmd/loadgen to drive it.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metaclass/internal/transport"
)

func main() {
	var (
		addr = flag.String("addr", ":7480", "TCP listen address")
		tick = flag.Float64("tick", 30, "replication tick rate (Hz)")
		stat = flag.Duration("stats", 5*time.Second, "stats print interval")
	)
	flag.Parse()
	if err := run(*addr, *tick, *stat); err != nil {
		fmt.Fprintln(os.Stderr, "classroomd:", err)
		os.Exit(1)
	}
}

func run(addr string, tickHz float64, statsEvery time.Duration) error {
	room, err := transport.ListenRoom(transport.RoomConfig{Addr: addr, TickHz: tickHz})
	if err != nil {
		return err
	}
	defer func() { _ = room.Close() }()
	fmt.Printf("classroomd: serving on %s at %.0f Hz\n", room.Addr(), tickHz)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(statsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\nclassroomd: shutting down")
			return room.Close()
		case <-ticker.C:
			st := room.Stats()
			fmt.Printf("participants=%d joined=%d left=%d poses=%d\n",
				st.Entities, st.Joined, st.Left, st.Poses)
		}
	}
}
