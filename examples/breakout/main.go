// Breakout: the paper's gamified learning scenario (§III-A) — cross-campus
// teams racing through a "digital breakout" puzzle sequence while their
// avatars stay synchronized, plus a learner-driven presentation afterwards.
package main

import (
	"fmt"
	"log"
	"time"

	"metaclass/classroom"
	"metaclass/internal/mathx"
	"metaclass/internal/netsim"
	"metaclass/internal/protocol"
	"metaclass/internal/session"
	"metaclass/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	d, err := classroom.NewDeployment(classroom.Config{Seed: 11})
	if err != nil {
		return err
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		return err
	}
	cwb, err := d.AddCampus("cwb", 2)
	if err != nil {
		return err
	}
	if err := d.ConnectCampuses(gz, cwb); err != nil {
		return err
	}

	var events int
	sess := session.NewManager(func(_ *protocol.ActivityEvent) { events++ })
	_ = events

	teacher, err := gz.AddEducator("Prof. Wang", trace.Lecturer{
		Left: mathx.V3(-2, 0, 0), Right: mathx.V3(2, 0, 0),
	})
	if err != nil {
		return err
	}
	sess.Enroll(teacher, classroom.RoleEducator)

	// Mixed teams: each team pairs a GZ student, a CWB student and a remote
	// learner — the learner-collaboration pattern the paper highlights.
	type member struct {
		id   classroom.ParticipantID
		from string
	}
	var members []member
	for i := 0; i < 3; i++ {
		id, err := gz.AddLearner(fmt.Sprintf("gz-%d", i), trace.Seated{
			Anchor: mathx.V3(float64(i)-1, 0, 3), Phase: float64(i)})
		if err != nil {
			return err
		}
		members = append(members, member{id, "gz"})
	}
	for i := 0; i < 3; i++ {
		id, err := cwb.AddLearner(fmt.Sprintf("cwb-%d", i), trace.Seated{
			Anchor: mathx.V3(float64(i)-1, 0, 3), Phase: float64(i) + 0.5})
		if err != nil {
			return err
		}
		members = append(members, member{id, "cwb"})
	}
	for i := 0; i < 3; i++ {
		_, id, err := d.AddRemoteLearner(fmt.Sprintf("vr-%d", i), trace.Seated{},
			netsim.ResidentialBroadband(25*time.Millisecond))
		if err != nil {
			return err
		}
		members = append(members, member{id, "vr"})
	}
	for _, m := range members {
		sess.Enroll(m.id, classroom.RoleLearner)
	}

	bo, err := sess.CreateBreakout("networking-escape", []string{"crc32", "vandermonde", "kcenter"})
	if err != nil {
		return err
	}
	// Team red: members 0,3,6 (one per venue); team blue: 1,4,7; green: 2,5,8.
	for t, name := range []string{"red", "blue", "green"} {
		ids := []classroom.ParticipantID{members[t].id, members[t+3].id, members[t+6].id}
		if err := sess.FormTeam(bo, name, ids); err != nil {
			return err
		}
	}
	if err := d.Run(2 * time.Second); err != nil {
		return err
	}
	if err := sess.OpenBreakout(d.Now(), bo); err != nil {
		return err
	}
	fmt.Println("breakout opened: 3 mixed-venue teams, 3 stages")

	// Scripted race: red solves fast, blue fumbles stage 2, green stalls.
	type attempt struct {
		after time.Duration
		who   classroom.ParticipantID
		code  string
	}
	attempts := []attempt{
		{1 * time.Second, members[0].id, "crc32"},
		{2 * time.Second, members[1].id, "crc32"},
		{3 * time.Second, members[3].id, "vandermonde"},
		{4 * time.Second, members[4].id, "wrong-guess"},
		{5 * time.Second, members[2].id, "crc32"},
		{6 * time.Second, members[6].id, "kcenter"}, // red escapes
		{8 * time.Second, members[4].id, "vandermonde"},
		{9 * time.Second, members[7].id, "kcenter"}, // blue escapes
	}
	for _, a := range attempts {
		if err := d.Run(a.after - (d.Now() - 2*time.Second) + 0); err != nil {
			return err
		}
		adv, esc, err := sess.AttemptStage(d.Now(), bo, a.who, a.code)
		if err != nil {
			return err
		}
		status := "wrong"
		if adv {
			status = "advanced"
		}
		if esc {
			status = "ESCAPED"
		}
		fmt.Printf("  t=%-6v %-12s tried %-12q -> %s\n",
			d.Now().Round(time.Millisecond), d.NameOf(a.who), a.code, status)
	}

	lb, err := sess.Leaderboard(bo)
	if err != nil {
		return err
	}
	fmt.Println("\nleaderboard:")
	for i, row := range lb {
		esc := ""
		if row.Escaped {
			esc = fmt.Sprintf("escaped at %v", row.EscapedAt.Round(time.Millisecond))
		}
		fmt.Printf("  %d. team %-6s %d/3 stages %s\n", i+1, row.Team, row.StagesSolved, esc)
	}

	// The winning team's remote member presents their solution to all venues
	// (learner-driven activity, §III-A).
	pres, err := sess.StartPresentation(d.Now(), teacher, "red team solution", 5)
	if err != nil {
		return err
	}
	if err := sess.GrantControl(pres, teacher, members[6].id); err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if err := d.Run(time.Second); err != nil {
			return err
		}
		if _, err := sess.Navigate(d.Now(), pres, members[6].id, 1); err != nil {
			return err
		}
	}
	slide, _ := sess.CurrentSlide(pres)
	fmt.Printf("\npresentation: remote learner %s drove the deck to slide %d/5 from their VR classroom\n",
		d.NameOf(members[6].id), slide+1)
	fmt.Printf("activity events replicated to all venues: %d\n", len(sess.Log()))
	return nil
}
