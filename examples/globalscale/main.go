// Globalscale: the paper's "thousands of remote users scattered worldwide"
// scenario — a lecture fanned out to hundreds of VR auditors across regions,
// comparing a single cloud against greedy regional relay placement, with
// interest-managed replication.
package main

import (
	"fmt"
	"log"
	"time"

	"metaclass/classroom"
	"metaclass/internal/cloud"
	"metaclass/internal/mathx"
	"metaclass/internal/netsim"
	"metaclass/internal/region"
	"metaclass/internal/trace"
)

const usersPerRegion = 25

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo := region.GlobalCampus()
	clientRegions := []region.ID{"kr", "jp", "us-east", "eu-west", "sa-poor"}

	// Greedy k-center relay placement over the measured RTT matrix.
	counts := map[region.ID]int{}
	for _, r := range clientRegions {
		counts[r] = usersPerRegion
	}
	relays, err := topo.PlaceRelays(3, counts)
	if err != nil {
		return err
	}
	assign, err := topo.Assign(relays, clientRegions)
	if err != nil {
		return err
	}
	fmt.Printf("relay placement (greedy k-center, k=3): %v\n", relays)
	for _, r := range clientRegions {
		lat, _ := topo.Latency(r, assign[r])
		fmt.Printf("  %-8s -> relay %-8s (%v one-way)\n", r, assign[r], lat)
	}

	d, err := classroom.NewDeployment(classroom.Config{Seed: 3, EnableInterest: true})
	if err != nil {
		return err
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		return err
	}
	if _, err := gz.AddEducator("Prof. Wang", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0),
	}); err != nil {
		return err
	}

	// Stand up the chosen relays (cloud lives in hk).
	relayHandles := map[region.ID]*cloud.Relay{}
	for _, rr := range relays {
		lat, err := topo.Latency("hk", rr)
		if err != nil {
			return err
		}
		if lat == 0 {
			lat = 2 * time.Millisecond // same-region datacenter hop
		}
		rel, err := d.AddRelay(string(rr), netsim.LinkConfig{
			Latency: lat, Jitter: 2 * time.Millisecond, Bandwidth: 10e9,
		})
		if err != nil {
			return err
		}
		relayHandles[rr] = rel
	}

	// Join users through their assigned relay.
	joined := 0
	for ri, r := range clientRegions {
		rel := relayHandles[assign[r]]
		for i := 0; i < usersPerRegion; i++ {
			script := trace.Seated{
				Anchor: mathx.V3(float64(i%5)*1.2, 0, float64(ri*6+i/5)*1.2),
				Phase:  float64(ri*100 + i),
			}
			_, _, err := d.AddRemoteLearnerVia(rel, string(r), script,
				netsim.ResidentialBroadband(12*time.Millisecond))
			if err != nil {
				return err
			}
			joined++
		}
	}
	fmt.Printf("joined %d remote learners across %d regions\n\n", joined, len(clientRegions))

	if err := d.Run(15 * time.Second); err != nil {
		return err
	}

	// Report per-region staleness and the fan-out economics.
	fmt.Println("per-client avatar staleness (p95) by region:")
	byRegion := map[string][]time.Duration{}
	for id, v := range d.Clients() {
		name := d.NameOf(id)
		byRegion[name] = append(byRegion[name], v.Metrics().Histogram("pose.age").P95())
	}
	for _, r := range clientRegions {
		ps := byRegion[string(r)]
		var worst time.Duration
		for _, p := range ps {
			if p > worst {
				worst = p
			}
		}
		fmt.Printf("  %-8s worst p95 = %v over %d clients\n", r, worst.Round(time.Millisecond), len(ps))
	}
	cloudBytes := d.Cloud().Metrics().Counter("sync.bytes.sent").Value()
	fmt.Printf("\ncloud egress: %.0f KB/s for %d users (relays absorb the per-client fan-out)\n",
		float64(cloudBytes)/d.Now().Seconds()/1024, joined)
	for rr, h := range relayHandles {
		b := h.Metrics().Counter("sync.bytes.sent").Value()
		fmt.Printf("  relay %-8s egress: %.0f KB/s, %d clients\n",
			rr, float64(b)/d.Now().Seconds()/1024, h.ClientCount())
	}
	return nil
}
