// Globalscale: the paper's "thousands of remote users scattered worldwide"
// scenario, driven end to end through the geo deployment layer — a global
// classroom first served from a single Hong Kong cloud, then geo-sharded
// live: greedy k-center placement stands relays up, every far cohort roams
// onto its placed relay mid-run (live session handoff), and one relay later
// drains back to the cloud. The program prints each region's worst p95
// avatar staleness before and after the roam, which is the paper's C2
// remedy measured end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"metaclass/internal/geo"
	"metaclass/internal/metrics"
	"metaclass/internal/netsim"
	"metaclass/internal/protocol"
	"metaclass/internal/region"
	"metaclass/internal/vclock"
)

const usersPerRegion = 6

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo := region.GlobalCampus()
	clientRegions := []region.ID{"kr", "jp", "us-east", "eu-west", "sa-poor"}

	sim := vclock.New(3)
	d, err := geo.New(sim, &geo.NetsimFabric{Net: netsim.New(sim)}, geo.Config{
		Topology:    topo,
		CloudRegion: "hk",
	})
	if err != nil {
		return err
	}

	// Everyone joins the single cloud first: no relays are deployed yet, so
	// bestServer routes every session to Hong Kong over its access link.
	id := protocol.ParticipantID(1)
	byRegion := map[region.ID][]protocol.ParticipantID{}
	for _, r := range clientRegions {
		for i := 0; i < usersPerRegion; i++ {
			if _, err := d.Join(id, r); err != nil {
				return err
			}
			byRegion[r] = append(byRegion[r], id)
			id++
		}
	}
	if err := d.Start(); err != nil {
		return err
	}
	fmt.Printf("joined %d remote learners across %d regions, all served by the hk cloud\n\n",
		int(id)-1, len(clientRegions))

	run := func(dt time.Duration) error { return sim.Run(sim.Now() + dt) }

	// worstP95 measures each region's worst p95 pose age over a 3 s window
	// (histogram deltas against cuts taken here).
	worstP95 := func() (map[region.ID]time.Duration, error) {
		cuts := map[protocol.ParticipantID]metrics.Histogram{}
		for _, r := range clientRegions {
			for _, cid := range byRegion[r] {
				s, _ := d.Session(cid)
				cuts[cid] = *s.VR.Metrics().Histogram("pose.age")
			}
		}
		if err := run(3 * time.Second); err != nil {
			return nil, err
		}
		out := map[region.ID]time.Duration{}
		for _, r := range clientRegions {
			for _, cid := range byRegion[r] {
				s, _ := d.Session(cid)
				cut := cuts[cid]
				w := s.VR.Metrics().Histogram("pose.age").Delta(&cut)
				if p := w.P95(); p > out[r] {
					out[r] = p
				}
			}
		}
		return out, nil
	}

	if err := run(2 * time.Second); err != nil { // warm up
		return err
	}
	before, err := worstP95()
	if err != nil {
		return err
	}

	// Geo-shard live: place relays by greedy k-center over the census, then
	// roam every session whose placed relay beats the cloud by more than the
	// hysteresis — each move is a live handoff (baseline transfer, link cut,
	// adoption) with zero lost or duplicated updates.
	placed, err := d.Deploy(3)
	if err != nil {
		return err
	}
	fmt.Printf("relay placement (greedy k-center, k=3): %v\n", placed)
	moved, err := d.Roam()
	if err != nil {
		return err
	}
	for _, r := range clientRegions {
		s, _ := d.Session(byRegion[r][0])
		serverRegion, label := region.ID("hk"), "hk cloud"
		if served := s.ServedBy(); served != "" {
			serverRegion, label = served, "relay "+string(served)
		}
		lat, _ := topo.Latency(r, serverRegion)
		fmt.Printf("  %-8s -> %-14s (%v one-way access)\n", r, label, lat)
	}
	fmt.Printf("roamed %d sessions onto their placed relays (live handoffs)\n\n", moved)

	if err := run(2 * time.Second); err != nil { // settle across the cut
		return err
	}
	after, err := worstP95()
	if err != nil {
		return err
	}

	// Administrative drain: retire the us-east relay — its sessions migrate
	// to their next-best server live, then the endpoint is reclaimed.
	if _, ok := d.Relay("us-east"); ok {
		if err := d.Drain("us-east"); err != nil {
			return err
		}
		fmt.Println("drained the us-east relay: its sessions migrated to their next-best server")
		if err := run(time.Second); err != nil {
			return err
		}
	}

	fmt.Println("\nworst p95 avatar staleness by region (single cloud -> geo-sharded):")
	for _, r := range clientRegions {
		b, a := before[r], after[r]
		improve := "-"
		if b > 0 && a < b {
			improve = fmt.Sprintf("-%.0f%%", 100*(1-float64(a)/float64(b)))
		}
		fmt.Printf("  %-8s %7v -> %-7v %s  (%d clients)\n",
			r, b.Round(time.Millisecond), a.Round(time.Millisecond), improve, len(byRegion[r]))
	}
	fmt.Printf("\nmigrations: %d (roams %d, drains %d)\n",
		d.Metrics().Counter("geo.migrations").Value(),
		d.Metrics().Counter("geo.roams").Value(),
		d.Metrics().Counter("geo.drains").Value())
	return nil
}
