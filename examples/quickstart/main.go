// Quickstart: the smallest possible Metaverse classroom — one physical
// campus, one remote VR learner, ten seconds of class. Prints what the
// remote learner sees and how stale it is.
package main

import (
	"fmt"
	"log"
	"time"

	"metaclass/classroom"
	"metaclass/internal/mathx"
	"metaclass/internal/netsim"
	"metaclass/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	d, err := classroom.NewDeployment(classroom.Config{Seed: 1})
	if err != nil {
		return err
	}

	// One physical classroom with a pacing lecturer.
	campus, err := d.AddCampus("gz", 1)
	if err != nil {
		return err
	}
	teacher, err := campus.AddEducator("Prof. Wang", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0),
	})
	if err != nil {
		return err
	}

	// One remote learner on home broadband (30 ms one-way).
	remote, _, err := d.AddRemoteLearner("kaist-student", trace.Seated{},
		netsim.ResidentialBroadband(30*time.Millisecond))
	if err != nil {
		return err
	}

	// Ten seconds of class.
	if err := d.Run(10 * time.Second); err != nil {
		return err
	}

	p, ok := remote.DisplayedPose(teacher, d.Now())
	if !ok {
		return fmt.Errorf("remote learner cannot see the teacher")
	}
	age := remote.Metrics().Histogram("pose.age")
	fmt.Printf("after %v of class:\n", d.Now())
	fmt.Printf("  the remote learner sees %s at %v\n", d.NameOf(teacher), p.Position)
	fmt.Printf("  avatar staleness: p50=%v p95=%v (paper threshold: 100ms)\n",
		age.P50().Round(time.Millisecond), age.P95().Round(time.Millisecond))
	fmt.Printf("  %d participants visible\n", len(remote.VisibleParticipants()))
	return nil
}
