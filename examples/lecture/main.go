// Lecture: the paper's Fig. 2 unit case end to end — a cross-campus lecture
// shared between HKUST GZ and HKUST CWB with remote VR auditors, including
// an in-Metaverse quiz (§III-A feature i). Prints per-venue visibility,
// latency budgets, and the quiz outcome.
package main

import (
	"fmt"
	"log"
	"time"

	"metaclass/classroom"
	"metaclass/internal/mathx"
	"metaclass/internal/netsim"
	"metaclass/internal/protocol"
	"metaclass/internal/session"
	"metaclass/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	d, err := classroom.NewDeployment(classroom.Config{Seed: 7})
	if err != nil {
		return err
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		return err
	}
	cwb, err := d.AddCampus("cwb", 2)
	if err != nil {
		return err
	}
	if err := d.ConnectCampuses(gz, cwb); err != nil {
		return err
	}

	teacher, err := gz.AddEducator("Prof. Wang", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0),
	})
	if err != nil {
		return err
	}

	sess := session.NewManager(nil)
	sess.Enroll(teacher, classroom.RoleEducator)

	var students []classroom.ParticipantID
	for i := 0; i < 8; i++ {
		id, err := gz.AddLearner(fmt.Sprintf("gz-%d", i), trace.Seated{
			Anchor: mathx.V3(float64(i%4)-1.5, 0, 2.5+float64(i/4)), Phase: float64(i),
		})
		if err != nil {
			return err
		}
		students = append(students, id)
		sess.Enroll(id, classroom.RoleLearner)
	}
	for i := 0; i < 8; i++ {
		id, err := cwb.AddLearner(fmt.Sprintf("cwb-%d", i), trace.Seated{
			Anchor: mathx.V3(float64(i%4)-1.5, 0, 2.5+float64(i/4)), Phase: float64(i) + 0.4,
		})
		if err != nil {
			return err
		}
		students = append(students, id)
		sess.Enroll(id, classroom.RoleLearner)
	}
	for i := 0; i < 6; i++ {
		_, id, err := d.AddRemoteLearner(fmt.Sprintf("remote-%d", i), trace.Seated{
			Anchor: mathx.V3(float64(i), 0, 0), Phase: 1.9 * float64(i),
		}, netsim.ResidentialBroadband(time.Duration(20+10*i)*time.Millisecond))
		if err != nil {
			return err
		}
		students = append(students, id)
		sess.Enroll(id, classroom.RoleLearner)
	}

	// First half of the lecture.
	if err := d.Run(15 * time.Second); err != nil {
		return err
	}

	// Mid-lecture quiz, answered from all three venues.
	quiz, err := sess.CreateQuiz("checkpoint", []session.Question{
		{Prompt: "Latency users notice?", Choices: []string{"10 ms", "100 ms", "1 s"}, Answer: 1},
		{Prompt: "Who corrects remote avatar poses?", Choices: []string{"headset", "edge server", "router"}, Answer: 1},
	})
	if err != nil {
		return err
	}
	if err := sess.OpenQuiz(d.Now(), quiz, time.Minute); err != nil {
		return err
	}
	for i, id := range students {
		// Most students get both right; a few miss one.
		a0, a1 := 1, 1
		if i%5 == 0 {
			a1 = 0
		}
		if err := sess.SubmitAnswer(d.Now(), quiz, id, 0, a0); err != nil {
			return err
		}
		if err := sess.SubmitAnswer(d.Now(), quiz, id, 1, a1); err != nil {
			return err
		}
	}
	if err := d.Run(15 * time.Second); err != nil {
		return err
	}
	scores, err := sess.CloseQuiz(d.Now(), quiz)
	if err != nil {
		return err
	}

	// Report.
	total := 1 + len(students)
	fmt.Printf("Fig. 2 unit case after %v:\n", d.Now())
	for _, campus := range []*classroom.Campus{gz, cwb} {
		age := campus.Edge().Metrics().Histogram("remote.pose.age")
		fmt.Printf("  %-9s sees %2d/%d participants; remote avatar age p95=%v; visitor seats=%d\n",
			campus.Name(), len(campus.Edge().VisibleParticipants()), total,
			age.P95().Round(time.Millisecond),
			campus.Edge().Metrics().Counter("seats.assigned").Value())
	}
	fmt.Printf("  %-9s hosts %2d/%d entities; VR seats=%d\n",
		"cloud", d.Cloud().World().Len(), total,
		d.Cloud().Metrics().Counter("seats.assigned").Value())
	perfect := 0
	for _, s := range scores {
		if s == 2 {
			perfect++
		}
	}
	fmt.Printf("  quiz: %d submissions, %d perfect scores\n", len(scores), perfect)

	// Where does everyone see the teacher right now?
	now := d.Now()
	pGZ, _ := gz.Edge().DisplayPose(teacher, now)
	pCWB, _ := cwb.Edge().DisplayPose(teacher, now)
	fmt.Printf("  teacher now: GZ renders %v; CWB renders (seat-corrected) %v\n",
		pGZ.Position, pCWB.Position)
	var sampleRemote protocol.ParticipantID
	for id := range d.Clients() {
		sampleRemote = id
		break
	}
	if p, ok := d.Clients()[sampleRemote].DisplayedPose(teacher, now); ok {
		fmt.Printf("  remote learner %d renders teacher at %v\n", sampleRemote, p.Position)
	}
	return nil
}
