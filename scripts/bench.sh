#!/usr/bin/env bash
# bench.sh — run the root E1–E10 benchmark suite with -benchmem and emit
# BENCH_<n>.json recording name, ns/op, B/op, allocs/op and each bench's
# headline metric (e.g. cloud-egress-KB/s). The JSON files form the repo's
# perf trajectory: BENCH_1.json is PR 1's floor; later perf PRs append
# BENCH_2.json, BENCH_3.json, ... and get judged against the previous file.
#
# Usage:
#   scripts/bench.sh [n]                      run the suite, write BENCH_<n>.json (default n=1)
#   scripts/bench.sh [n] --compare OLD.json   ...then fail if E4Scale allocs/op
#                                             regressed >5% versus OLD.json;
#                                             with n omitted the run goes to a
#                                             temp file (no baseline clobbered)
#   scripts/bench.sh --compare OLD.json NEW.json
#                                             no benchmark run: compare the two
#                                             committed files (the CI gate)
#   BENCHTIME=10x scripts/bench.sh            to override -benchtime
set -euo pipefail
cd "$(dirname "$0")/.."

# e4_allocs FILE — extract E4Scale's allocs_per_op from a BENCH json.
e4_allocs() {
    sed -n 's/.*"name": "E4Scale".*"allocs_per_op": \([0-9][0-9]*\).*/\1/p' "$1"
}

# compare_allocs OLD NEW — fail when E4Scale allocs/op regressed >5%.
compare_allocs() {
    local old_file="$1" new_file="$2" old new
    old="$(e4_allocs "$old_file")"
    new="$(e4_allocs "$new_file")"
    if [[ -z "$old" || -z "$new" ]]; then
        echo "bench.sh: missing E4Scale allocs_per_op in $old_file or $new_file" >&2
        exit 1
    fi
    echo "E4Scale allocs/op: $old ($old_file) -> $new ($new_file)" >&2
    if ! awk -v o="$old" -v n="$new" 'BEGIN { exit !(n <= o * 1.05) }'; then
        echo "bench.sh: FAIL — E4Scale allocs/op regressed >5% ($old -> $new)" >&2
        exit 1
    fi
    echo "bench.sh: OK — within the 5% allocation budget" >&2
}

N=""
COMPARE=""
COMPARE_NEW=""
while [[ $# -gt 0 ]]; do
    case "$1" in
    --compare)
        COMPARE="${2:?--compare needs a BENCH json to compare against}"
        shift 2
        if [[ $# -gt 0 && "$1" != --* ]]; then
            COMPARE_NEW="$1"
            shift
        fi
        ;;
    *)
        N="$1"
        shift
        ;;
    esac
done

if [[ -n "$COMPARE_NEW" ]]; then
    # Pure file comparison — no benchmark run.
    compare_allocs "$COMPARE" "$COMPARE_NEW"
    exit 0
fi

TMP_OUT=""
if [[ -n "$N" ]]; then
    OUT="BENCH_${N}.json"
elif [[ -n "$COMPARE" ]]; then
    # --compare without an explicit suite number: measure into a temp file
    # so the committed BENCH_1.json baseline is never clobbered by accident.
    OUT="$(mktemp)"
    TMP_OUT="$OUT"
else
    OUT="BENCH_1.json"
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW" $TMP_OUT' EXIT

go test -bench 'BenchmarkE[0-9]' -benchmem -run '^$' ${BENCHTIME:+-benchtime "$BENCHTIME"} . | tee "$RAW" >&2

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name) # strip -GOMAXPROCS suffix if present
    iters = $2
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") ns = val
        else if (unit == "B/op") bytes = val
        else if (unit == "allocs/op") allocs = val
        else {
            if (extra != "") extra = extra ", "
            extra = extra "\"" unit "\": " val
        }
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (ns != "") line = line sprintf(", \"ns_per_op\": %s", ns)
    if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    if (extra != "") line = line sprintf(", \"metrics\": {%s}", extra)
    line = line "}"
    bench[n++] = line
}
END {
    print "{"
    printf "  \"suite\": \"E1-E10 root benchmarks\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"command\": \"go test -bench BenchmarkE[0-9] -benchmem -run ^$ .\",\n"
    print  "  \"benchmarks\": ["
    for (i = 0; i < n; i++) print bench[i] (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2

if [[ -n "$COMPARE" ]]; then
    compare_allocs "$COMPARE" "$OUT"
fi
