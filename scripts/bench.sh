#!/usr/bin/env bash
# bench.sh — run the root E1–E12 benchmark suite with -benchmem and emit
# BENCH_<n>.json recording name, ns/op, B/op, allocs/op and each bench's
# headline metric (e.g. cloud-egress-KB/s). The JSON files form the repo's
# perf trajectory: BENCH_1.json is PR 1's floor; later perf PRs append
# BENCH_2.json, BENCH_3.json, ... and get judged against the previous file.
#
# Usage:
#   scripts/bench.sh [n]                      run the suite, write BENCH_<n>.json (default n=1)
#   scripts/bench.sh [n] --compare OLD.json   ...then fail if E4Scale allocs/op
#                                             or ns/op regressed >5% vs OLD.json;
#                                             with n omitted the run goes to a
#                                             temp file (no baseline clobbered)
#   scripts/bench.sh --compare OLD.json NEW.json
#                                             no benchmark run: compare the two
#                                             committed files (the CI gate)
#   BENCHTIME=10x scripts/bench.sh            to override -benchtime
set -euo pipefail
cd "$(dirname "$0")/.."

# allocs_of FILE NAME — extract NAME's allocs_per_op from a BENCH json.
allocs_of() {
    sed -n 's|.*"name": "'"$2"'".*"allocs_per_op": \([0-9][0-9]*\).*|\1|p' "$1"
}

# ns_of FILE NAME — extract NAME's ns_per_op from a BENCH json.
ns_of() {
    sed -n 's|.*"name": "'"$2"'".*"ns_per_op": \([0-9][0-9.]*\).*|\1|p' "$1"
}

# metric_of FILE NAME METRIC — extract NAME's headline METRIC (from the
# "metrics" object go test's extra ReportMetric units land in).
metric_of() {
    sed -n 's|.*"name": "'"$2"'".*"'"$3"'": \([0-9][0-9.]*\).*|\1|p' "$1"
}

# gate_metric NAME METRIC OLD NEW REQUIRED — fail when NAME's METRIC grew
# >5% (headline metrics gated here are costs: egress bandwidth). With
# REQUIRED=optional the gate is skipped when the old file predates the
# benchmark.
gate_metric() {
    local name="$1" metric="$2" old_file="$3" new_file="$4" required="$5" old new
    old="$(metric_of "$old_file" "$name" "$metric")"
    new="$(metric_of "$new_file" "$name" "$metric")"
    if [[ -z "$new" ]]; then
        echo "bench.sh: missing $name $metric in $new_file" >&2
        exit 1
    fi
    if [[ -z "$old" ]]; then
        if [[ "$required" == "optional" ]]; then
            echo "bench.sh: note — $old_file has no $name $metric baseline; gate skipped" >&2
            return 0
        fi
        echo "bench.sh: missing $name $metric in $old_file" >&2
        exit 1
    fi
    echo "$name $metric: $old ($old_file) -> $new ($new_file)" >&2
    if ! awk -v o="$old" -v n="$new" 'BEGIN { exit !(n <= o * 1.05) }'; then
        echo "bench.sh: FAIL — $name $metric regressed >5% ($old -> $new)" >&2
        exit 1
    fi
}

# gate_ns NAME OLD NEW — fail when NAME's ns/op regressed >5%. Wall-time
# gates only make sense between files measured on comparable hardware, which
# committed BENCH jsons are (the suite's own trajectory).
gate_ns() {
    local name="$1" old_file="$2" new_file="$3" old new
    old="$(ns_of "$old_file" "$name")"
    new="$(ns_of "$new_file" "$name")"
    if [[ -z "$new" ]]; then
        echo "bench.sh: missing $name ns_per_op in $new_file" >&2
        exit 1
    fi
    if [[ -z "$old" ]]; then
        echo "bench.sh: missing $name ns_per_op in $old_file" >&2
        exit 1
    fi
    echo "$name ns/op: $old ($old_file) -> $new ($new_file)" >&2
    if ! awk -v o="$old" -v n="$new" 'BEGIN { exit !(n <= o * 1.05) }'; then
        echo "bench.sh: FAIL — $name ns/op regressed >5% ($old -> $new)" >&2
        exit 1
    fi
}

# gate_allocs NAME OLD NEW REQUIRED — fail when NAME's allocs/op regressed
# >5%. With REQUIRED=optional the gate is skipped (with a notice) when the
# old file predates the benchmark.
gate_allocs() {
    local name="$1" old_file="$2" new_file="$3" required="$4" old new
    old="$(allocs_of "$old_file" "$name")"
    new="$(allocs_of "$new_file" "$name")"
    if [[ -z "$new" ]]; then
        echo "bench.sh: missing $name allocs_per_op in $new_file" >&2
        exit 1
    fi
    if [[ -z "$old" ]]; then
        if [[ "$required" == "optional" ]]; then
            echo "bench.sh: note — $old_file has no $name baseline; gate skipped" >&2
            return 0
        fi
        echo "bench.sh: missing $name allocs_per_op in $old_file" >&2
        exit 1
    fi
    echo "$name allocs/op: $old ($old_file) -> $new ($new_file)" >&2
    if ! awk -v o="$old" -v n="$new" 'BEGIN { exit !(n <= o * 1.05) }'; then
        echo "bench.sh: FAIL — $name allocs/op regressed >5% ($old -> $new)" >&2
        exit 1
    fi
}

# compare_allocs OLD NEW — fail when E4Scale or the onboarding storm bench
# regressed >5% in allocs/op, when the tiered mega-event's cloud egress grew
# >5% (the decimation gate: re-admitting the far/ambient crowd at full rate
# moves bandwidth, not allocations), or when the cold-join first-sync
# latency grew >5% (the receiver-side pooling gate: geo handoffs that fall
# back to a snapshot pay exactly this path). (Onboard joined the suite with
# BENCH_5.json, E12MegaEvent with BENCH_7.json, ColdJoin with BENCH_9.json;
# older baselines skip their gates.)
compare_allocs() {
    gate_allocs "E4Scale" "$1" "$2" required
    gate_allocs "Onboard/storm=64" "$1" "$2" optional
    gate_allocs "ColdJoin" "$1" "$2" optional
    gate_ns "E4Scale" "$1" "$2"
    gate_metric "E12MegaEvent" "cloud-egress-KB/s" "$1" "$2" optional
    gate_metric "ColdJoin" "cold-join-ms" "$1" "$2" optional
    echo "bench.sh: OK — within the 5% allocation, wall-time, egress, and cold-join budgets" >&2
}

N=""
COMPARE=""
COMPARE_NEW=""
while [[ $# -gt 0 ]]; do
    case "$1" in
    --compare)
        COMPARE="${2:?--compare needs a BENCH json to compare against}"
        shift 2
        if [[ $# -gt 0 && "$1" != --* ]]; then
            COMPARE_NEW="$1"
            shift
        fi
        ;;
    *)
        N="$1"
        shift
        ;;
    esac
done

if [[ -n "$COMPARE_NEW" ]]; then
    # Pure file comparison — no benchmark run.
    compare_allocs "$COMPARE" "$COMPARE_NEW"
    exit 0
fi

TMP_OUT=""
if [[ -n "$N" ]]; then
    OUT="BENCH_${N}.json"
elif [[ -n "$COMPARE" ]]; then
    # --compare without an explicit suite number: measure into a temp file
    # so the committed BENCH_1.json baseline is never clobbered by accident.
    OUT="$(mktemp)"
    TMP_OUT="$OUT"
else
    OUT="BENCH_1.json"
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW" $TMP_OUT' EXIT

go test -bench 'BenchmarkE[0-9]|BenchmarkOnboard|BenchmarkColdJoin|BenchmarkPlanTick|BenchmarkFanout' -benchmem -run '^$' ${BENCHTIME:+-benchtime "$BENCHTIME"} . | tee "$RAW" >&2

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name) # strip -GOMAXPROCS suffix if present
    iters = $2
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") ns = val
        else if (unit == "B/op") bytes = val
        else if (unit == "allocs/op") allocs = val
        else {
            if (extra != "") extra = extra ", "
            extra = extra "\"" unit "\": " val
        }
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (ns != "") line = line sprintf(", \"ns_per_op\": %s", ns)
    if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    if (extra != "") line = line sprintf(", \"metrics\": {%s}", extra)
    line = line "}"
    bench[n++] = line
}
END {
    print "{"
    printf "  \"suite\": \"E1-E12 + onboarding root benchmarks\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"command\": \"go test -bench BenchmarkE[0-9]|BenchmarkOnboard|BenchmarkColdJoin|BenchmarkPlanTick|BenchmarkFanout -benchmem -run ^$ .\",\n"
    print  "  \"benchmarks\": ["
    for (i = 0; i < n; i++) print bench[i] (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2

if [[ -n "$COMPARE" ]]; then
    compare_allocs "$COMPARE" "$OUT"
fi
