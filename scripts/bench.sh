#!/usr/bin/env bash
# bench.sh — run the root E1–E10 benchmark suite with -benchmem and emit
# BENCH_<n>.json recording name, ns/op, B/op, allocs/op and each bench's
# headline metric (e.g. cloud-egress-KB/s). The JSON files form the repo's
# perf trajectory: BENCH_1.json is this PR's floor; later perf PRs append
# BENCH_2.json, BENCH_3.json, ... and get judged against the previous file.
#
# Usage: scripts/bench.sh [n]      (default n=1)
#   BENCHTIME=10x scripts/bench.sh  to override -benchtime
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-1}"
OUT="BENCH_${N}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -bench 'BenchmarkE[0-9]' -benchmem -run '^$' ${BENCHTIME:+-benchtime "$BENCHTIME"} . | tee "$RAW" >&2

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name) # strip -GOMAXPROCS suffix if present
    iters = $2
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") ns = val
        else if (unit == "B/op") bytes = val
        else if (unit == "allocs/op") allocs = val
        else {
            if (extra != "") extra = extra ", "
            extra = extra "\"" unit "\": " val
        }
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (ns != "") line = line sprintf(", \"ns_per_op\": %s", ns)
    if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    if (extra != "") line = line sprintf(", \"metrics\": {%s}", extra)
    line = line "}"
    bench[n++] = line
}
END {
    print "{"
    printf "  \"suite\": \"E1-E10 root benchmarks\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"command\": \"go test -bench BenchmarkE[0-9] -benchmem -run ^$ .\",\n"
    print  "  \"benchmarks\": ["
    for (i = 0; i < n; i++) print bench[i] (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
