package classroom

import (
	"testing"
	"time"

	"metaclass/internal/mathx"
	"metaclass/internal/netsim"
	"metaclass/internal/trace"
)

// buildUnitCase assembles the paper's Fig. 2 deployment: GZ and CWB
// campuses, a lecturer and learners at each, plus remote VR learners.
func buildUnitCase(t *testing.T, seed int64) (d *Deployment, teacher ParticipantID,
	gz, cwb *Campus, remotes []ParticipantID) {
	t.Helper()
	var err error
	d, err = NewDeployment(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	gz, err = d.AddCampus("gz", 1)
	if err != nil {
		t.Fatal(err)
	}
	cwb, err = d.AddCampus("cwb", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ConnectCampuses(gz, cwb); err != nil {
		t.Fatal(err)
	}
	teacher, err = gz.AddEducator("prof-wang", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := gz.AddLearner("gz-student", trace.Seated{
			Anchor: mathx.V3(float64(i)-2, 0, 3), Phase: float64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := cwb.AddLearner("cwb-student", trace.Seated{
			Anchor: mathx.V3(float64(i)-2, 0, 3), Phase: float64(i) + 0.5,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		_, id, err := d.AddRemoteLearner("kaist-student", trace.Seated{
			Anchor: mathx.V3(float64(i), 0, 1), Phase: float64(i) * 1.3,
		}, netsim.ResidentialBroadband(30*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		remotes = append(remotes, id)
	}
	return d, teacher, gz, cwb, remotes
}

func TestUnitCaseEveryoneVisibleEverywhere(t *testing.T) {
	d, teacher, gz, cwb, remotes := buildUnitCase(t, 1)
	if err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	total := 1 + 5 + 5 + 3 // teacher + gz + cwb + remote

	// The cloud's world must contain everyone.
	if got := d.Cloud().World().Len(); got != total {
		t.Errorf("cloud world = %d entities, want %d", got, total)
	}

	// Each campus display must see everyone (its locals + the other campus
	// via the inter-campus link + remote users via the cloud).
	for _, campus := range []*Campus{gz, cwb} {
		vis := campus.Edge().VisibleParticipants()
		if len(vis) != total {
			t.Errorf("campus %s sees %d participants, want %d: %v",
				campus.Name(), len(vis), total, vis)
		}
	}

	// Each remote client must see everyone except themselves.
	for id, v := range d.Clients() {
		vis := v.VisibleParticipants()
		if len(vis) != total-1 {
			t.Errorf("client %d sees %d participants, want %d", id, len(vis), total-1)
		}
		for _, other := range vis {
			if other == id {
				t.Errorf("client %d replicated itself", id)
			}
		}
	}

	// The teacher specifically is visible to every remote learner with a
	// recent, sane pose.
	now := d.Now()
	for _, rid := range remotes {
		v := d.Clients()[rid]
		p, ok := v.DisplayedPose(teacher, now)
		if !ok {
			t.Errorf("remote %d cannot see the teacher", rid)
			continue
		}
		if !p.IsFinite() {
			t.Errorf("remote %d sees non-finite teacher pose", rid)
		}
		// Teacher paces within |x| <= 3 (+ small gesture margin).
		if p.Position.X < -4 || p.Position.X > 4 {
			t.Errorf("teacher rendered at %v, outside the lecture stage", p.Position)
		}
	}
}

func TestUnitCaseLatencyBudget(t *testing.T) {
	d, _, gz, cwb, _ := buildUnitCase(t, 2)
	if err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Inter-campus pose age: one-way 8 ms link + tick batching (33 ms) +
	// sensing; p95 must stay well under the paper's 100 ms threshold.
	for _, campus := range []*Campus{gz, cwb} {
		h := campus.Edge().Metrics().Histogram("remote.pose.age")
		if h.Count() == 0 {
			t.Fatalf("campus %s recorded no remote pose ages", campus.Name())
		}
		if p95 := h.P95(); p95 > 100*time.Millisecond {
			t.Errorf("campus %s p95 pose age %v exceeds 100ms", campus.Name(), p95)
		}
	}
	// Remote clients ride a 30 ms access link + edge->cloud; p95 under 200ms.
	for id, v := range d.Clients() {
		h := v.Metrics().Histogram("pose.age")
		if h.Count() == 0 {
			t.Fatalf("client %d recorded no pose ages", id)
		}
		if p95 := h.P95(); p95 > 200*time.Millisecond {
			t.Errorf("client %d p95 pose age %v exceeds 200ms", id, p95)
		}
	}
}

func TestUnitCaseRemoteAvatarsSeated(t *testing.T) {
	d, _, gz, cwb, _ := buildUnitCase(t, 3)
	if err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Each campus hosts 6 locals (teacher only at GZ) and must have seated
	// visiting avatars: 5 or 6 from the other campus + 3 VR users.
	for _, campus := range []*Campus{gz, cwb} {
		assigned := campus.Edge().Metrics().Counter("seats.assigned").Value()
		if assigned < 8 {
			t.Errorf("campus %s assigned %d visitor seats, want >= 8", campus.Name(), assigned)
		}
	}
	// VR classroom seats every participant it hosts.
	if got := d.Cloud().Metrics().Counter("seats.assigned").Value(); got < 3 {
		t.Errorf("cloud assigned %d VR seats, want >= 3", got)
	}
}

func TestUnitCaseDisplayTracksTruth(t *testing.T) {
	d, teacher, gz, cwb, _ := buildUnitCase(t, 4)
	if err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	script, ok := gz.ScriptOf(teacher)
	if !ok {
		t.Fatal("no teacher script")
	}
	// CWB renders the GZ teacher seat-corrected, so positions differ by a
	// rigid transform — but motion magnitude must match. Compare displayed
	// speed against true speed over a window.
	now := d.Now()
	var dispDist, trueDist float64
	var prevDisp, prevTrue mathx.Vec3
	for i := 0; i <= 20; i++ {
		at := now - time.Duration(20-i)*50*time.Millisecond
		p, ok := cwb.Edge().DisplayPose(teacher, at)
		if !ok {
			t.Fatal("teacher not displayable at CWB")
		}
		tp := script.PoseAt(at)
		if i > 0 {
			dispDist += p.Position.Dist(prevDisp)
			trueDist += tp.Position.Dist(prevTrue)
		}
		prevDisp, prevTrue = p.Position, tp.Position
	}
	if trueDist == 0 {
		t.Fatal("teacher did not move in truth")
	}
	ratio := dispDist / trueDist
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("displayed motion %.2f m vs true %.2f m (ratio %.2f), want ~1",
			dispDist, trueDist, ratio)
	}
}

func TestParticipantDeparture(t *testing.T) {
	d, _, gz, cwb, _ := buildUnitCase(t, 5)
	if err := d.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Add then remove a student mid-session.
	id, err := gz.AddLearner("transient", trace.Seated{Anchor: mathx.V3(2, 0, 4)})
	if err != nil {
		t.Fatal(err)
	}
	// The new participant's headset must start (deployment already running).
	if err := d.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Cloud().World().Get(id); !ok {
		t.Fatal("late joiner never reached the cloud")
	}
	if err := gz.RemoveLocal(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Cloud().World().Get(id); ok {
		t.Error("departed participant still in cloud world")
	}
	vis := cwb.Edge().VisibleParticipants()
	for _, v := range vis {
		if v == id {
			t.Error("departed participant still visible at CWB")
		}
	}
}

func TestRelayPathDelivers(t *testing.T) {
	d, teacher, _, _, _ := buildUnitCase(t, 6)
	relay, err := d.AddRelay("us-east", netsim.LinkConfig{
		Latency: 100 * time.Millisecond, Jitter: 5 * time.Millisecond, Bandwidth: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, rid, err := d.AddRemoteLearnerVia(relay, "mit-student", trace.Seated{},
		netsim.ResidentialBroadband(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if relay.ClientCount() != 1 {
		t.Errorf("relay clients = %d", relay.ClientCount())
	}
	p, ok := v.DisplayedPose(teacher, d.Now())
	if !ok {
		t.Fatal("relay-served client cannot see the teacher")
	}
	if !p.IsFinite() {
		t.Error("non-finite teacher pose via relay")
	}
	// The relay client publishes poses that must reach the cloud world.
	if _, ok := d.Cloud().World().Get(rid); !ok {
		t.Error("relay client's own pose never reached the cloud")
	}
}

func TestRemoteLearnerMigration(t *testing.T) {
	d, teacher, _, _, _ := buildUnitCase(t, 8)
	relay, err := d.AddRelay("us-east", netsim.LinkConfig{
		Latency: 40 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, rid, err := d.AddRemoteLearner("roamer", trace.Seated{Anchor: mathx.V3(4, 0, 1)},
		netsim.ResidentialBroadband(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	recvBefore := v.Metrics().Counter("recv.updates").Value()

	// Cloud -> relay: a live handoff mid-session.
	if err := d.MigrateRemoteLearner(rid, relay, netsim.ResidentialBroadband(10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if relay.ClientCount() != 1 {
		t.Errorf("relay clients = %d after migration, want 1", relay.ClientCount())
	}
	if got := v.Metrics().Counter("recv.updates").Value(); got <= recvBefore {
		t.Errorf("no updates received after migration (%d -> %d)", recvBefore, got)
	}
	p, ok := v.DisplayedPose(teacher, d.Now())
	if !ok || !p.IsFinite() {
		t.Fatal("migrated learner cannot see the teacher via the relay")
	}
	if _, ok := d.Cloud().World().Get(rid); !ok {
		t.Error("migrated learner's own pose no longer reaches the cloud")
	}

	// Migrating to the current server is a no-op.
	if err := d.MigrateRemoteLearner(rid, relay, netsim.ResidentialBroadband(10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if relay.ClientCount() != 1 {
		t.Errorf("no-op migration changed relay clients to %d", relay.ClientCount())
	}

	// Relay -> cloud: hand the session back.
	if err := d.MigrateRemoteLearner(rid, nil, netsim.ResidentialBroadband(30*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if relay.ClientCount() != 0 {
		t.Errorf("relay clients = %d after handing back to the cloud, want 0", relay.ClientCount())
	}
	if p, ok := v.DisplayedPose(teacher, d.Now()); !ok || !p.IsFinite() {
		t.Fatal("learner lost the teacher after migrating back to the cloud")
	}

	// Full teardown still works after two handoffs.
	if err := d.RemoveRemoteLearner(rid); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Cloud().World().Get(rid); ok {
		t.Error("departed learner still in the cloud world after migration churn")
	}
}

func TestDeterministicDeployment(t *testing.T) {
	run := func() uint64 {
		d, _, gz, _, _ := buildUnitCase(t, 42)
		if err := d.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return gz.Edge().Metrics().Counter("sync.bytes.sent").Value()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs diverged: %d vs %d bytes", a, b)
	}
	if a == 0 {
		t.Error("no sync traffic at all")
	}
}

func TestDuplicateCampusRejected(t *testing.T) {
	d, err := NewDeployment(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddCampus("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddCampus("b", 1); err == nil {
		t.Error("duplicate classroom ID accepted")
	}
}

func TestLinkDegradationSurvived(t *testing.T) {
	d, teacher, gz, cwb, _ := buildUnitCase(t, 7)
	if err := d.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Degrade the inter-campus link to 10% loss for a while.
	cfg, err := d.Network().LinkConfigOf(netsim.Addr(gz.Edge().Addr()), netsim.Addr(cwb.Edge().Addr()))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Network().SetLink(netsim.Addr(gz.Edge().Addr()), netsim.Addr(cwb.Edge().Addr()),
		netsim.Degraded(cfg, 3, 200)); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Restore and let the protocol recover.
	if err := d.Network().SetLink(netsim.Addr(gz.Edge().Addr()), netsim.Addr(cwb.Edge().Addr()), cfg); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	p, ok := cwb.Edge().DisplayPose(teacher, d.Now())
	if !ok || !p.IsFinite() {
		t.Error("teacher lost at CWB after link degradation and recovery")
	}
	// Pose age must have recovered to something recent.
	rep, ok := cwb.Edge().ReplicaOf(gz.Edge().Addr())
	if !ok {
		t.Fatal("no replica of GZ at CWB")
	}
	if rep.Store().Len() == 0 {
		t.Error("GZ replica empty after recovery")
	}
}
