// Package classroom is the public API of the metaclass platform: a faithful,
// runnable realization of the virtual-physical blended Metaverse classroom
// blueprint from "Re-shaping Post-COVID-19 Teaching and Learning" (ICDCS'22).
//
// A Deployment assembles the paper's unit case (Fig. 2/3): physical campuses
// with MR classrooms and edge servers, one cloud-hosted VR classroom,
// optional regional relays, locally-sensed participants, and remote VR
// learners. Everything runs on a deterministic virtual clock over a
// simulated network, so sessions are reproducible and latency measurements
// exact.
//
// Quickstart:
//
//	d, _ := classroom.NewDeployment(classroom.Config{Seed: 1})
//	gz, _ := d.AddCampus("gz", 1)
//	cwb, _ := d.AddCampus("cwb", 2)
//	_ = d.ConnectCampuses(gz, cwb)
//	teacher, _ := gz.AddEducator("Prof. Wang", trace.Lecturer{...})
//	_, _ = gz.AddLearner("alice", trace.Seated{...})
//	_, _ = cwb.AddLearner("bob", trace.Seated{...})
//	remote, _ := d.AddRemoteLearner("kaist-1", trace.Seated{}, netsim.ResidentialBroadband(30*time.Millisecond))
//	_ = d.Run(30 * time.Second)
//	p, ok := remote.DisplayedPose(teacher, d.Now())
package classroom

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"strconv"
	"time"

	"metaclass/internal/avatar"
	"metaclass/internal/client"
	"metaclass/internal/cloud"
	"metaclass/internal/core"
	"metaclass/internal/edge"
	"metaclass/internal/endpoint"
	"metaclass/internal/expression"
	"metaclass/internal/interest"
	"metaclass/internal/netsim"
	"metaclass/internal/protocol"
	"metaclass/internal/sensors"
	"metaclass/internal/trace"
	"metaclass/internal/vclock"
)

// Re-exported identifier types so callers rarely need internal imports.
type (
	// ParticipantID identifies a learner, educator or guest.
	ParticipantID = protocol.ParticipantID
	// ClassroomID identifies a physical or virtual classroom.
	ClassroomID = protocol.ClassroomID
	// Role is a participant's function in the session.
	Role = protocol.Role
)

// Roles.
const (
	RoleLearner  = protocol.RoleLearner
	RoleEducator = protocol.RoleEducator
	RoleGuest    = protocol.RoleGuest
)

// Config parameterizes a deployment.
type Config struct {
	// Seed drives all simulation randomness (sensor noise, loss, jitter).
	Seed int64
	// TickHz is the server replication rate (default 30).
	TickHz float64
	// InterpDelay is the display playout delay (default 100 ms).
	InterpDelay time.Duration
	// Interest enables interest-managed fan-out at the cloud (default
	// policy if nil and EnableInterest is true).
	EnableInterest bool
	// VRRows/VRCols/VRPitch shape the cloud VR classroom's seating grid
	// (defaults per cloud.Config: 40 x 25 at 1.2 m). Remote learners are
	// seat-corrected into this grid, so it is the geometry interest tiers
	// measure distances in — a mega-event venue needs a wider pitch.
	VRRows, VRCols int
	VRPitch        float64
	// CloudLink overrides the edge<->cloud link profile.
	CloudLink *netsim.LinkConfig
	// HeadsetHz is the headset tracking rate (default 60).
	HeadsetHz float64
	// RoomSensorCount is the per-campus sensor array size (default 4).
	RoomSensorCount int
	// Parallelism bounds every node's tick worker pool (see
	// node.Config.Parallelism): 0 means GOMAXPROCS, 1 the exact
	// single-threaded legacy path. Results are identical at every width.
	Parallelism int
}

func (c *Config) applyDefaults() {
	if c.TickHz <= 0 {
		c.TickHz = 30
	}
	if c.InterpDelay <= 0 {
		c.InterpDelay = 100 * time.Millisecond
	}
	if c.HeadsetHz <= 0 {
		c.HeadsetHz = 60
	}
	if c.RoomSensorCount <= 0 {
		c.RoomSensorCount = 4
	}
}

// Deployment is a running Metaverse classroom installation.
type Deployment struct {
	cfg Config
	sim *vclock.Sim
	net *netsim.Network

	// interest is the deployment-wide fan-out policy (nil when interest
	// management is disabled). Cloud, relays and edges share one instance so
	// pins (educator focus) and tier radii agree everywhere a client may
	// attach.
	interest *interest.Policy

	cloud    *cloud.Server
	campuses map[ClassroomID]*Campus
	relays   map[string]*cloud.Relay
	clients  map[ParticipantID]*client.VR
	// relayOf records which relay serves a remote learner (nil for direct),
	// so leave teardown reaches the right server.
	relayOf map[ParticipantID]*cloud.Relay
	names   map[ParticipantID]string
	nextID  ParticipantID
	started bool
}

// NewDeployment creates a deployment with a cloud VR server already up.
func NewDeployment(cfg Config) (*Deployment, error) {
	cfg.applyDefaults()
	sim := vclock.New(cfg.Seed)
	net := netsim.New(sim)
	var pol *interest.Policy
	if cfg.EnableInterest {
		pol = interest.NewPolicy()
	}
	// Nodes are constructed against the transport-agnostic endpoint API;
	// deployments back them with the simulated fabric's adapter.
	cl, err := cloud.New(sim, net.Endpoint("cloud"), cloud.Config{
		TickHz:      cfg.TickHz,
		VRRows:      cfg.VRRows,
		VRCols:      cfg.VRCols,
		VRPitch:     cfg.VRPitch,
		InterpDelay: cfg.InterpDelay,
		Interest:    pol,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Deployment{
		cfg:      cfg,
		sim:      sim,
		net:      net,
		interest: pol,
		cloud:    cl,
		campuses: make(map[ClassroomID]*Campus),
		relays:   make(map[string]*cloud.Relay),
		clients:  make(map[ParticipantID]*client.VR),
		relayOf:  make(map[ParticipantID]*cloud.Relay),
		names:    make(map[ParticipantID]string),
		nextID:   1,
	}, nil
}

// Sim exposes the simulation clock.
func (d *Deployment) Sim() *vclock.Sim { return d.sim }

// Network exposes the simulated fabric (for failure injection).
func (d *Deployment) Network() *netsim.Network { return d.net }

// Cloud exposes the VR classroom server.
func (d *Deployment) Cloud() *cloud.Server { return d.cloud }

// Now returns the current virtual time.
func (d *Deployment) Now() time.Duration { return d.sim.Now() }

// allocID hands out the next participant ID.
func (d *Deployment) allocID(name string) ParticipantID {
	id := d.nextID
	d.nextID++
	d.names[id] = name
	return id
}

// NameOf returns a participant's display name.
func (d *Deployment) NameOf(id ParticipantID) string { return d.names[id] }

// Campus is one physical MR classroom with its edge server and sensing.
type Campus struct {
	d       *Deployment
	name    string
	id      ClassroomID
	edge    *edge.Server
	array   *sensors.Array
	headset map[ParticipantID]*sensors.Headset
	scripts map[ParticipantID]trace.MotionScript
}

// AddCampus creates a campus with an edge server connected to the cloud
// over the default (or configured) edge<->cloud link.
func (d *Deployment) AddCampus(name string, id ClassroomID) (*Campus, error) {
	if d.started {
		return nil, errors.New("classroom: deployment already running")
	}
	if _, ok := d.campuses[id]; ok {
		return nil, fmt.Errorf("classroom: campus %d exists", id)
	}
	addr := netsim.Addr("edge-" + name)
	es, err := edge.New(d.sim, d.net.Endpoint(addr), edge.Config{
		Classroom:   id,
		TickHz:      d.cfg.TickHz,
		InterpDelay: d.cfg.InterpDelay,
		Interest:    d.interest,
		Parallelism: d.cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	link := netsim.EdgeToCloud()
	if d.cfg.CloudLink != nil {
		link = *d.cfg.CloudLink
	}
	if err := d.net.ConnectBoth(addr, netsim.Addr(d.cloud.Addr()), link); err != nil {
		return nil, err
	}
	if err := es.ConnectPeer(d.cloud.Addr()); err != nil {
		return nil, err
	}
	if err := d.cloud.ConnectEdge(endpoint.Addr(addr), id); err != nil {
		return nil, err
	}
	c := &Campus{
		d:       d,
		name:    name,
		id:      id,
		edge:    es,
		headset: make(map[ParticipantID]*sensors.Headset),
		scripts: make(map[ParticipantID]trace.MotionScript),
	}
	c.array = sensors.NewArray(d.cfg.RoomSensorCount, 12, 10, d.sim, sensors.RoomSensorConfig{}, c.roomSink)
	d.campuses[id] = c
	return c, nil
}

// ConnectCampuses joins two campuses over the inter-campus real-time link
// so each edge replicates directly to the other (Fig. 3).
func (d *Deployment) ConnectCampuses(a, b *Campus) error {
	if err := d.net.ConnectBoth(netsim.Addr(a.edge.Addr()), netsim.Addr(b.edge.Addr()), netsim.InterCampus()); err != nil {
		return err
	}
	if err := a.edge.ConnectPeer(b.edge.Addr()); err != nil {
		return err
	}
	return b.edge.ConnectPeer(a.edge.Addr())
}

// Name returns the campus name.
func (c *Campus) Name() string { return c.name }

// ID returns the classroom ID.
func (c *Campus) ID() ClassroomID { return c.id }

// Edge exposes the campus edge server.
func (c *Campus) Edge() *edge.Server { return c.edge }

func (c *Campus) roomSink(o sensors.Observation) {
	// SensorID is "camN/<participant>"; recover the participant.
	for i := len(o.SensorID) - 1; i >= 0; i-- {
		if o.SensorID[i] == '/' {
			n, err := strconv.ParseUint(o.SensorID[i+1:], 10, 32)
			if err != nil {
				return
			}
			_ = c.edge.IngestObservation(ParticipantID(n), o)
			return
		}
	}
}

// addLocal registers a physically-present participant with full sensing.
func (c *Campus) addLocal(name string, role Role, script trace.MotionScript) (ParticipantID, error) {
	id := c.d.allocID(name)
	av := avatar.Avatar{
		Participant: id,
		Name:        name,
		Role:        role,
		Preferred:   avatar.LoDHigh,
	}
	vacant := c.edge.Seats().VacantIndices()
	if len(vacant) == 0 {
		return 0, fmt.Errorf("classroom: campus %s is full", c.name)
	}
	if err := c.edge.RegisterLocal(av, vacant[0]); err != nil {
		return 0, err
	}
	hs := sensors.NewHeadset(strconv.FormatUint(uint64(id), 10), c.d.sim, script,
		sensors.HeadsetConfig{RateHz: c.d.cfg.HeadsetHz},
		func(o sensors.Observation) { _ = c.edge.IngestObservation(id, o) })
	hs.SetExpressionSource(
		func(t time.Duration) expression.Expression {
			// Mild ambient expressiveness; activities override via SetFlags.
			return expression.PresetNeutral.Make()
		},
		func(_ time.Duration, e expression.Expression) { _ = c.edge.IngestExpression(id, e) },
	)
	c.headset[id] = hs
	c.scripts[id] = script
	c.array.Track(strconv.FormatUint(uint64(id), 10), script)
	// Mid-session joins start sensing immediately (the room array is already
	// sweeping; Track above adds them to its rotation).
	if c.d.started {
		hs.Start()
	}
	return id, nil
}

// AddLearner seats a student in the physical classroom.
func (c *Campus) AddLearner(name string, script trace.MotionScript) (ParticipantID, error) {
	return c.addLocal(name, RoleLearner, script)
}

// AddEducator adds an instructor; the cloud pins them as always-replicated
// focus for every remote learner.
func (c *Campus) AddEducator(name string, script trace.MotionScript) (ParticipantID, error) {
	id, err := c.addLocal(name, RoleEducator, script)
	if err != nil {
		return 0, err
	}
	c.d.cloud.PinFocus(id)
	return id, nil
}

// RemoveLocal withdraws a participant from the campus.
func (c *Campus) RemoveLocal(id ParticipantID) error {
	hs, ok := c.headset[id]
	if !ok {
		return fmt.Errorf("classroom: %d not at campus %s", id, c.name)
	}
	hs.Stop()
	delete(c.headset, id)
	delete(c.scripts, id)
	c.array.Untrack(strconv.FormatUint(uint64(id), 10))
	return c.edge.UnregisterLocal(id)
}

// ScriptOf returns a local participant's ground-truth script (measurement).
func (c *Campus) ScriptOf(id ParticipantID) (trace.MotionScript, bool) {
	s, ok := c.scripts[id]
	return s, ok
}

// AddRelay stands up a regional relay connected to the cloud over link.
func (d *Deployment) AddRelay(name string, link netsim.LinkConfig) (*cloud.Relay, error) {
	if _, ok := d.relays[name]; ok {
		return nil, fmt.Errorf("classroom: relay %s exists", name)
	}
	addr := netsim.Addr("relay-" + name)
	r, err := cloud.NewRelay(d.sim, d.net.Endpoint(addr), cloud.RelayConfig{
		Upstream:    d.cloud.Addr(),
		TickHz:      d.cfg.TickHz,
		InterpDelay: d.cfg.InterpDelay,
		Interest:    d.interest,
		Parallelism: d.cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	if err := d.net.ConnectBoth(addr, netsim.Addr(d.cloud.Addr()), link); err != nil {
		return nil, err
	}
	if err := d.cloud.AddRelay(endpoint.Addr(addr)); err != nil {
		return nil, err
	}
	d.relays[name] = r
	return r, nil
}

// AddRemoteLearner joins a remote VR learner directly to the cloud over the
// given access link.
func (d *Deployment) AddRemoteLearner(name string, script trace.MotionScript, link netsim.LinkConfig) (*client.VR, ParticipantID, error) {
	return d.addRemote(name, script, link, d.cloud.Addr(), true)
}

// AddRemoteLearnerVia joins a remote learner through a regional relay.
func (d *Deployment) AddRemoteLearnerVia(relay *cloud.Relay, name string, script trace.MotionScript, link netsim.LinkConfig) (*client.VR, ParticipantID, error) {
	return d.addRemote(name, script, link, relay.Addr(), false)
}

func (d *Deployment) addRemote(name string, script trace.MotionScript, link netsim.LinkConfig, server endpoint.Addr, direct bool) (*client.VR, ParticipantID, error) {
	id := d.allocID(name)
	addr := netsim.Addr("vr-" + strconv.FormatUint(uint64(id), 10))
	v, err := client.NewVR(d.sim, d.net.Endpoint(addr), client.VRConfig{
		Participant: id,
		Server:      server,
		InterpDelay: d.cfg.InterpDelay,
		Script:      script,
	})
	if err != nil {
		return nil, 0, err
	}
	if err := d.net.ConnectBoth(addr, netsim.Addr(server), link); err != nil {
		return nil, 0, err
	}
	if direct {
		if err := d.cloud.AddClient(id, endpoint.Addr(addr)); err != nil {
			return nil, 0, err
		}
	} else {
		if err := d.cloud.RegisterRelayClient(id, server); err != nil {
			return nil, 0, err
		}
		for _, name := range sortedKeys(d.relays) {
			if r := d.relays[name]; r.Addr() == server {
				if err := r.AddClient(id, endpoint.Addr(addr)); err != nil {
					return nil, 0, err
				}
				d.relayOf[id] = r
				break
			}
		}
	}
	d.clients[id] = v
	// Mid-session joins go live immediately: the deployment is already
	// running, so the learner's publish loop starts now.
	if d.started {
		if err := v.Start(); err != nil {
			return nil, 0, err
		}
	}
	return v, id, nil
}

// MigrateRemoteLearner hands a live remote learner off to a different server
// mid-session: to a regional relay, or back to the cloud when relay is nil,
// over the given access link. The handoff is the geo deployment's
// drain-transfer-adopt sequence — the old server exports the learner's
// replication baseline (ack floor plus owed debt), the old access path is cut
// (in-flight frames cancelled, never leaked), the new path comes up, and the
// new server adopts the session seeded from the baseline — so no update is
// lost or duplicated across the cut. Synchronous: call it between Run slices
// so no tick interleaves with the cut. A no-op when the learner is already
// served there.
func (d *Deployment) MigrateRemoteLearner(id ParticipantID, relay *cloud.Relay, link netsim.LinkConfig) error {
	v, ok := d.clients[id]
	if !ok {
		return fmt.Errorf("classroom: unknown remote learner %d", id)
	}
	old := d.relayOf[id]
	if old == relay {
		return nil
	}
	oldAddr, newAddr := d.cloud.Addr(), d.cloud.Addr()
	if old != nil {
		oldAddr = old.Addr()
	}
	if relay != nil {
		newAddr = relay.Addr()
	}

	// 1. Export the replication baseline and retire the old server's route.
	// The cloud keeps seat and authored entity either way — only the
	// replication route changes hands (DemoteClient also records the relay
	// route, so edge ingest keeps reaching the learner).
	var b core.PeerBaseline
	var err error
	if old == nil {
		b, err = d.cloud.DemoteClient(id, newAddr)
	} else {
		b, err = old.ReleaseClient(id)
	}
	if err != nil {
		return err
	}

	// 2. Cut the old access path: deliveries in flight on the pair are
	// cancelled (frames released, handlers not invoked) — which is exactly
	// why the baseline flattens in-flight sends back to owed debt.
	addr := netsim.Addr(v.Addr())
	for _, dir := range [2][2]netsim.Addr{{addr, netsim.Addr(oldAddr)}, {netsim.Addr(oldAddr), addr}} {
		if err := d.net.Disconnect(dir[0], dir[1]); err != nil {
			return err
		}
	}

	// 3. Bring up the new access path before the new server plans a tick.
	if err := d.net.ConnectBoth(addr, netsim.Addr(newAddr), link); err != nil {
		return err
	}

	// 4. Adopt the session at the new server, seeding its replicator from
	// the transferred baseline (plus the conservative re-owe).
	if relay == nil {
		if err := d.cloud.PromoteClient(id, endpoint.Addr(addr), b); err != nil {
			return err
		}
		delete(d.relayOf, id)
	} else {
		if err := relay.AdoptClient(id, endpoint.Addr(addr), b); err != nil {
			return err
		}
		if old != nil { // relay -> relay: the cloud tracks the new route
			if err := d.cloud.RetargetClient(id, newAddr); err != nil {
				return err
			}
		}
		d.relayOf[id] = relay
	}

	// 5. Repoint the client: publishes, pings, and auto-acks follow.
	v.Retarget(newAddr)
	return nil
}

// RemoveRemoteLearner withdraws a remote VR learner mid-session: their
// publish loop stops, their server-side replication peer and interest state
// are torn down (scratch returning to the onboarding pool), their authored
// entity is removed from the world so the departure replicates everywhere,
// and their endpoint detaches — frames still in flight toward it are
// released by the transport, never leaked.
func (d *Deployment) RemoveRemoteLearner(id ParticipantID) error {
	v, ok := d.clients[id]
	if !ok {
		return fmt.Errorf("classroom: unknown remote learner %d", id)
	}
	delete(d.clients, id)
	delete(d.names, id) // churn must not grow the roster without bound
	v.Stop()
	if r := d.relayOf[id]; r != nil {
		delete(d.relayOf, id)
		if err := r.RemoveClient(id); err != nil {
			return err
		}
	}
	if err := d.cloud.RemoveClient(id); err != nil {
		return err
	}
	// Remove the learner's host from the fabric: its links and any deliveries
	// still queued toward it are reclaimed eagerly (frames released exactly
	// once, never leaked), so churn cannot grow the netsim tables without
	// bound. Traffic the learner already put on the wire still arrives.
	return d.net.RemoveHost(netsim.Addr(v.Addr()))
}

// Start launches every server, sensor and client. Run calls it implicitly.
func (d *Deployment) Start() error {
	if d.started {
		return nil
	}
	d.started = true
	if err := d.cloud.Start(); err != nil {
		return err
	}
	// Deterministic startup order: map iteration order varies run to run,
	// which would reorder tick registration and derail reproducibility.
	for _, cid := range sortedKeys(d.campuses) {
		c := d.campuses[cid]
		if err := c.edge.Start(); err != nil {
			return err
		}
		c.array.Start()
		for _, pid := range sortedKeys(c.headset) {
			c.headset[pid].Start()
		}
	}
	for _, name := range sortedKeys(d.relays) {
		if err := d.relays[name].Start(); err != nil {
			return err
		}
	}
	for _, pid := range sortedKeys(d.clients) {
		if err := d.clients[pid].Start(); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Run starts (if needed) and advances the deployment by dur of virtual time.
func (d *Deployment) Run(dur time.Duration) error {
	if err := d.Start(); err != nil {
		return err
	}
	return d.sim.Run(d.sim.Now() + dur)
}

// Stop halts all tick loops and sensors.
func (d *Deployment) Stop() {
	for _, c := range d.campuses {
		c.edge.Stop()
		c.array.Stop()
		for _, hs := range c.headset {
			hs.Stop()
		}
	}
	for _, r := range d.relays {
		r.Stop()
	}
	for _, v := range d.clients {
		v.Stop()
	}
	d.cloud.Stop()
	d.started = false
}

// Campuses returns the campuses keyed by classroom ID.
func (d *Deployment) Campuses() map[ClassroomID]*Campus { return d.campuses }

// Clients returns remote learners keyed by participant ID.
func (d *Deployment) Clients() map[ParticipantID]*client.VR { return d.clients }
