module metaclass

go 1.24
