// Root benchmark suite: one benchmark per experiment in DESIGN.md §4.
// Each bench regenerates (a reduced-duration version of) the corresponding
// EXPERIMENTS.md table and reports its headline metric, so
//
//	go test -bench=. -benchmem
//
// reproduces every figure/claim of the paper in one run. The full tables
// print via `go run ./cmd/metaclass`.
package metaclass

import (
	"testing"
	"time"

	"metaclass/classroom"
	"metaclass/internal/experiments"
	"metaclass/internal/fusion"
	"metaclass/internal/mathx"
	"metaclass/internal/netsim"
	"metaclass/internal/pose"
	"metaclass/internal/protocol"
	"metaclass/internal/render"
	"metaclass/internal/sensors"
	"metaclass/internal/sickness"
	"metaclass/internal/trace"
	"metaclass/internal/vclock"
	"metaclass/internal/video"
)

// benchSeed keeps benchmark workloads deterministic run to run.
const benchSeed = 42

// BenchmarkE1UnitCase replays the Fig. 2 deployment (2 campuses + cloud +
// remote learners) for one simulated second per iteration.
func BenchmarkE1UnitCase(b *testing.B) {
	d, gz := buildBenchDeployment(b, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	visible := len(gz.Edge().VisibleParticipants())
	b.ReportMetric(float64(visible), "participants-visible")
}

// BenchmarkE2PipelineBudget measures the simulated capture-to-apply latency
// across the Fig. 3 pipeline.
func BenchmarkE2PipelineBudget(b *testing.B) {
	d, _ := buildBenchDeployment(b, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var worst time.Duration
	for _, v := range d.Clients() {
		if p := v.Metrics().Histogram("pose.age").P95(); p > worst {
			worst = p
		}
	}
	b.ReportMetric(float64(worst)/1e6, "p95-pose-age-ms")
}

// BenchmarkE3LatencySweep runs one latency point of the C1 sweep per
// iteration pair (alternating below/above the 100 ms threshold).
func BenchmarkE3LatencySweep(b *testing.B) {
	lats := []time.Duration{25 * time.Millisecond, 150 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		runLatencyBenchPoint(b, lats[i%2])
	}
}

func runLatencyBenchPoint(b *testing.B, oneWay time.Duration) {
	b.Helper()
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := gz.AddEducator("prof", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0)}); err != nil {
		b.Fatal(err)
	}
	if _, _, err := d.AddRemoteLearner("u", trace.Seated{},
		netsim.ResidentialBroadband(oneWay)); err != nil {
		b.Fatal(err)
	}
	if err := d.Run(2 * time.Second); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE4Scale measures cloud fan-out cost per simulated second at 100
// interest-managed remote users.
func BenchmarkE4Scale(b *testing.B) {
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed, EnableInterest: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := d.AddRemoteLearner("u", trace.Seated{
			Anchor: mathx.V3(float64(i%25)*1.2, 0, float64(i/25)*1.2), Phase: float64(i),
		}, netsim.ResidentialBroadband(25*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	egress := float64(d.Cloud().Metrics().Counter("sync.bytes.sent").Value()) /
		d.Now().Seconds() / 1024
	b.ReportMetric(egress, "cloud-egress-KB/s")
}

// BenchmarkE5Regional runs the poorly-peered client through a regional
// relay (the C2 remedy) for one simulated second per iteration.
func BenchmarkE5Regional(b *testing.B) {
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := gz.AddEducator("prof", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0)}); err != nil {
		b.Fatal(err)
	}
	relay, err := d.AddRelay("remote-region", netsim.LinkConfig{
		Latency: 170 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 10e9})
	if err != nil {
		b.Fatal(err)
	}
	cl, _, err := d.AddRemoteLearnerVia(relay, "u", trace.Seated{},
		netsim.ResidentialBroadband(8*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cl.Metrics().Histogram("pose.age").P95())/1e6, "p95-pose-age-ms")
}

// BenchmarkE6Render evaluates the full C3 plan/device/complexity grid.
func BenchmarkE6Render(b *testing.B) {
	cfg := render.PipelineConfig{RTT: 40 * time.Millisecond}
	var holds int
	for i := 0; i < b.N; i++ {
		holds = 0
		for _, n := range []int64{10, 30, 60} {
			for _, plan := range render.Plans() {
				rep := render.Evaluate(plan, render.DeviceStandalone, n*500_000, n*5_000, cfg, 0.6)
				if rep.LocalFrameTime <= time.Second/72 {
					holds++
				}
			}
		}
	}
	b.ReportMetric(float64(holds), "configs-holding-72Hz")
}

// BenchmarkE7Video streams one simulated second of FEC-protected lecture
// video over a 3%-loss link per iteration.
func BenchmarkE7Video(b *testing.B) {
	table := experiments.E7Video // ensure the full table stays reachable
	_ = table
	for i := 0; i < b.N; i++ {
		benchVideoSecond(b)
	}
}

func benchVideoSecond(b *testing.B) {
	b.Helper()
	sim, net := newBenchNet(b)
	cfg := video.StreamConfig{Strategy: video.StrategyFEC, K: 8, R: 3}
	var receiver *video.Receiver
	sender := video.NewSender(sim, cfg, func(c *protocol.VideoChunk) {
		if frame, err := protocol.Encode(c); err == nil {
			_ = net.Send("tx", "rx", frame)
		}
	})
	receiver = video.NewReceiver(sim, cfg, nil)
	_ = net.Bind("rx", netsim.HandlerFunc(func(_ netsim.Addr, payload []byte) {
		if msg, _, err := protocol.Decode(payload); err == nil {
			if c, ok := msg.(*protocol.VideoChunk); ok {
				receiver.HandleChunk(c)
			}
		}
	}))
	sender.Start()
	if err := sim.Run(time.Second); err != nil {
		b.Fatal(err)
	}
	sender.Stop()
}

func newBenchNet(b *testing.B) (*vclock.Sim, *netsim.Network) {
	b.Helper()
	sim := vclock.New(benchSeed)
	net := netsim.New(sim)
	if err := net.AddHost("tx", nil); err != nil {
		b.Fatal(err)
	}
	if err := net.AddHost("rx", nil); err != nil {
		b.Fatal(err)
	}
	if err := net.ConnectBoth("tx", "rx", netsim.LinkConfig{
		Latency: 20 * time.Millisecond, LossRate: 0.03}); err != nil {
		b.Fatal(err)
	}
	return sim, net
}

// BenchmarkE8Sickness evaluates the fuzzy predictor over the full C5 grid.
func BenchmarkE8Sickness(b *testing.B) {
	profile := sickness.DefaultProfile()
	var sum float64
	for i := 0; i < b.N; i++ {
		for _, lat := range []time.Duration{20, 80, 150, 250} {
			for _, fps := range []float64{90, 45, 20} {
				sum += sickness.Predict(sickness.Conditions{
					MotionToPhoton: lat * time.Millisecond,
					FrameRateHz:    fps, FOVDegrees: 100, NavSpeed: 1.5,
				}, profile)
			}
		}
	}
	b.ReportMetric(sum/float64(b.N)/12, "mean-sickness-score")
}

// BenchmarkE9DeadReckoning reconstructs 30 s of walker motion from 10 Hz
// updates with linear dead reckoning per iteration.
func BenchmarkE9DeadReckoning(b *testing.B) {
	script := trace.Walker{Waypoints: []mathx.Vec3{{}, {X: 6}, {X: 6, Z: 4}, {Z: 4}}, Speed: 1.4}
	for i := 0; i < b.N; i++ {
		buf := pose.NewInterpBuffer(0, 64, pose.Linear{})
		next := time.Duration(0)
		for at := time.Duration(0); at < 30*time.Second; at += 10 * time.Millisecond {
			for next <= at {
				buf.Push(script.PoseAt(next))
				next += 100 * time.Millisecond
			}
			if _, ok := buf.Sample(at); !ok {
				b.Fatal("no sample")
			}
		}
	}
}

// BenchmarkE10Fusion runs one second of 2-source sensor fusion per
// iteration.
func BenchmarkE10Fusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := vclock.New(benchSeed)
		script := trace.Seated{Anchor: mathx.V3(1, 0, 2)}
		f := fusion.New(fusion.Config{})
		sink := func(o sensors.Observation) { f.Observe(o) }
		h := sensors.NewHeadset("p", sim, script, sensors.HeadsetConfig{}, sink)
		arr := sensors.NewArray(3, 10, 8, sim, sensors.RoomSensorConfig{}, sink)
		arr.Track("p", script)
		h.Start()
		arr.Start()
		if err := sim.Run(time.Second); err != nil {
			b.Fatal(err)
		}
		if _, ok := f.Estimate(sim.Now()); !ok {
			b.Fatal("fusion produced no estimate")
		}
	}
}

func buildBenchDeployment(b *testing.B, localsPerCampus, remotes int) (*classroom.Deployment, *classroom.Campus) {
	b.Helper()
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		b.Fatal(err)
	}
	cwb, err := d.AddCampus("cwb", 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.ConnectCampuses(gz, cwb); err != nil {
		b.Fatal(err)
	}
	if _, err := gz.AddEducator("prof", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0)}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < localsPerCampus; i++ {
		anchor := mathx.V3(float64(i%8)-3.5, 0, 2+float64(i/8)*1.2)
		if _, err := gz.AddLearner("s", trace.Seated{Anchor: anchor, Phase: float64(i)}); err != nil {
			b.Fatal(err)
		}
		if _, err := cwb.AddLearner("s", trace.Seated{Anchor: anchor, Phase: float64(i) + 0.4}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < remotes; i++ {
		if _, _, err := d.AddRemoteLearner("r", trace.Seated{Phase: float64(i)},
			netsim.ResidentialBroadband(30*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}
	return d, gz
}
