// Root benchmark suite: one benchmark per experiment in DESIGN.md §4.
// Each bench regenerates (a reduced-duration version of) the corresponding
// EXPERIMENTS.md table and reports its headline metric, so
//
//	go test -bench=. -benchmem
//
// reproduces every figure/claim of the paper in one run. The full tables
// print via `go run ./cmd/metaclass`.
package metaclass

import (
	"fmt"
	"testing"
	"time"

	"metaclass/classroom"
	"metaclass/internal/core"
	"metaclass/internal/endpoint"
	"metaclass/internal/experiments"
	"metaclass/internal/fusion"
	"metaclass/internal/mathx"
	"metaclass/internal/metrics"
	"metaclass/internal/netsim"
	"metaclass/internal/pose"
	"metaclass/internal/protocol"
	"metaclass/internal/render"
	"metaclass/internal/sensors"
	"metaclass/internal/sickness"
	"metaclass/internal/trace"
	"metaclass/internal/vclock"
	"metaclass/internal/video"
	"metaclass/internal/work"
)

// benchSeed keeps benchmark workloads deterministic run to run.
const benchSeed = 42

// BenchmarkE1UnitCase replays the Fig. 2 deployment (2 campuses + cloud +
// remote learners) for one simulated second per iteration.
func BenchmarkE1UnitCase(b *testing.B) {
	d, gz := buildBenchDeployment(b, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	visible := len(gz.Edge().VisibleParticipants())
	b.ReportMetric(float64(visible), "participants-visible")
}

// BenchmarkE2PipelineBudget measures the simulated capture-to-apply latency
// across the Fig. 3 pipeline.
func BenchmarkE2PipelineBudget(b *testing.B) {
	d, _ := buildBenchDeployment(b, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var worst time.Duration
	for _, v := range d.Clients() {
		if p := v.Metrics().Histogram("pose.age").P95(); p > worst {
			worst = p
		}
	}
	b.ReportMetric(float64(worst)/1e6, "p95-pose-age-ms")
}

// BenchmarkE3LatencySweep runs one latency point of the C1 sweep per
// iteration pair (alternating below/above the 100 ms threshold).
func BenchmarkE3LatencySweep(b *testing.B) {
	lats := []time.Duration{25 * time.Millisecond, 150 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		runLatencyBenchPoint(b, lats[i%2])
	}
}

func runLatencyBenchPoint(b *testing.B, oneWay time.Duration) {
	b.Helper()
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := gz.AddEducator("prof", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0)}); err != nil {
		b.Fatal(err)
	}
	if _, _, err := d.AddRemoteLearner("u", trace.Seated{},
		netsim.ResidentialBroadband(oneWay)); err != nil {
		b.Fatal(err)
	}
	if err := d.Run(2 * time.Second); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE4Scale measures cloud fan-out cost per simulated second at 100
// interest-managed remote users.
func BenchmarkE4Scale(b *testing.B) {
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed, EnableInterest: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := d.AddRemoteLearner("u", trace.Seated{
			Anchor: mathx.V3(float64(i%25)*1.2, 0, float64(i/25)*1.2), Phase: float64(i),
		}, netsim.ResidentialBroadband(25*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	egress := float64(d.Cloud().Metrics().Counter("sync.bytes.sent").Value()) /
		d.Now().Seconds() / 1024
	b.ReportMetric(egress, "cloud-egress-KB/s")
}

// BenchmarkE5Regional runs the poorly-peered client through a regional
// relay (the C2 remedy) for one simulated second per iteration.
func BenchmarkE5Regional(b *testing.B) {
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := gz.AddEducator("prof", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0)}); err != nil {
		b.Fatal(err)
	}
	relay, err := d.AddRelay("remote-region", netsim.LinkConfig{
		Latency: 170 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 10e9})
	if err != nil {
		b.Fatal(err)
	}
	cl, _, err := d.AddRemoteLearnerVia(relay, "u", trace.Seated{},
		netsim.ResidentialBroadband(8*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cl.Metrics().Histogram("pose.age").P95())/1e6, "p95-pose-age-ms")
}

// BenchmarkOnboard measures the onboarding hot path: each iteration joins a
// storm of clients at the cloud, runs one tick (planning and sending each
// newcomer's first snapshot), and removes them again. With the node
// runtime's pooled client/peer state the per-join allocation cost must stay
// flat as the storm grows — the regression gate in scripts/bench.sh
// compares the storm=64 allocs/op the same way it gates E4Scale.
func BenchmarkOnboard(b *testing.B) {
	for _, storm := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("storm=%d", storm), func(b *testing.B) { benchOnboard(b, storm) })
	}
}

func benchOnboard(b *testing.B, storm int) {
	b.Helper()
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed, EnableInterest: true})
	if err != nil {
		b.Fatal(err)
	}
	// A persistent population keeps the world and fan-out warm. Short access
	// latency keeps acks well inside the delta window while removal
	// bookkeeping advances the store tick per leave.
	for i := 0; i < 20; i++ {
		if _, _, err := d.AddRemoteLearner("u", trace.Seated{
			Anchor: mathx.V3(float64(i%5)*1.2, 0, float64(i/5)*1.2), Phase: float64(i),
		}, netsim.ResidentialBroadband(5*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}
	// Pre-registered hosts and links for the churned clients, reused every
	// storm so the fabric itself does not grow.
	net := d.Network()
	ids := make([]protocol.ParticipantID, storm)
	addrs := make([]endpoint.Addr, storm)
	for k := 0; k < storm; k++ {
		ids[k] = protocol.ParticipantID(10000 + k)
		name := netsim.Addr(fmt.Sprintf("churn-%d", k))
		addrs[k] = endpoint.Addr(name)
		if err := net.AddHost(name, nil); err != nil {
			b.Fatal(err)
		}
		if err := net.ConnectBoth(name, netsim.Addr(d.Cloud().Addr()),
			netsim.LinkConfig{Latency: 5 * time.Millisecond, Bandwidth: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Run(2 * time.Second); err != nil {
		b.Fatal(err)
	}
	cl := d.Cloud()
	tick := time.Second / 30
	cycle := func() {
		for k := 0; k < storm; k++ {
			if err := cl.AddClient(ids[k], addrs[k]); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Run(tick); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < storm; k++ {
			if err := cl.RemoveClient(ids[k]); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Warm the onboarding pools to steady state. One cycle is not enough:
	// session teardown drains through 5ms links, so a departing client's
	// pooled state can return after the next storm already started, and the
	// pools keep growing (allocating) for a few cycles before the population
	// of in-flight departures settles.
	for i := 0; i < 4; i++ {
		cycle()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	b.StopTimer()
	b.ReportMetric(float64(storm), "joins/op")
}

// BenchmarkColdJoin measures the receiver-side cold path: each iteration
// joins one fresh client into an already-populated interest-managed
// classroom, runs the clock until the newcomer applies its first replication
// update (client.VR.FirstSyncAt), and leaves again. The headline metric is
// the mean join-to-first-sync latency; the allocation count covers the
// client's first full world apply — the path the pose.InterpPool exists for
// (one pooled playout buffer per visible entity instead of one allocation
// each). Migration re-joins make both numbers load-bearing: every geo
// handoff that falls back to a snapshot pays exactly this path.
// scripts/bench.sh gates cold-join-ms alongside the alloc/ns floors.
func BenchmarkColdJoin(b *testing.B) {
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed, EnableInterest: true})
	if err != nil {
		b.Fatal(err)
	}
	// A sizeable resident world: the cold join's first snapshot carries all
	// of it, so the buffer-per-entity cost is visible.
	for i := 0; i < 48; i++ {
		if _, _, err := d.AddRemoteLearner("u", trace.Seated{
			Anchor: mathx.V3(float64(i%8)*1.2, 0, float64(i/8)*1.2), Phase: float64(i),
		}, netsim.ResidentialBroadband(5*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Run(2 * time.Second); err != nil {
		b.Fatal(err)
	}
	link := netsim.ResidentialBroadband(5 * time.Millisecond)
	tick := time.Second / 30
	var total time.Duration
	joins := 0
	coldJoin := func() {
		v, id, err := d.AddRemoteLearner("cold", trace.Seated{
			Anchor: mathx.V3(9.6, 0, 9.6), Phase: 99,
		}, link)
		if err != nil {
			b.Fatal(err)
		}
		joined := d.Now()
		for i := 0; i < 60; i++ {
			if _, ok := v.FirstSyncAt(); ok {
				break
			}
			if err := d.Run(tick); err != nil {
				b.Fatal(err)
			}
		}
		first, ok := v.FirstSyncAt()
		if !ok {
			b.Fatal("cold join never synced")
		}
		total += first - joined
		joins++
		if err := d.RemoveRemoteLearner(id); err != nil {
			b.Fatal(err)
		}
		if err := d.Run(tick); err != nil { // drain the departure
			b.Fatal(err)
		}
	}
	// Warm the replica/interp pools to steady state (same rationale as
	// benchOnboard: pooled state returns a few cycles behind the joins).
	for i := 0; i < 4; i++ {
		coldJoin()
	}
	total, joins = 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldJoin()
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(joins)/1e6, "cold-join-ms")
}

// BenchmarkE11Churn measures one complete churn scenario per iteration: a
// fresh class with a base population warms up, rides 6 join/leave storm
// events (4 joins per event; each batch leaves two events later), and
// settles. Each iteration is self-contained — nothing carries over, so
// ns/op and egress are comparable across -benchtime settings instead of
// drifting with an ever-growing fabric.
func BenchmarkE11Churn(b *testing.B) {
	var egress float64
	for i := 0; i < b.N; i++ {
		egress = benchChurnScenario(b)
	}
	b.ReportMetric(egress, "cloud-egress-KB/s")
}

func benchChurnScenario(b *testing.B) float64 {
	b.Helper()
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed, EnableInterest: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := d.AddRemoteLearner("u", trace.Seated{Phase: float64(i)},
			netsim.ResidentialBroadband(25*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}
	var batches [][]classroom.ParticipantID
	fired := 0
	cancel := d.Sim().Ticker(500*time.Millisecond, func() {
		if fired >= 6 {
			return
		}
		fired++
		var batch []classroom.ParticipantID
		for i := 0; i < 4; i++ {
			_, id, err := d.AddRemoteLearner("c", trace.Seated{
				Anchor: mathx.V3(float64(i)*1.5+6, 0, 8), Phase: float64(fired + i),
			}, netsim.ResidentialBroadband(25*time.Millisecond))
			if err != nil {
				b.Fatal(err)
			}
			batch = append(batch, id)
		}
		batches = append(batches, batch)
		if len(batches) >= 3 {
			for _, id := range batches[len(batches)-3] {
				if err := d.RemoveRemoteLearner(id); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	if err := d.Run(5 * time.Second); err != nil {
		b.Fatal(err)
	}
	cancel()
	egress := float64(d.Cloud().Metrics().Counter("sync.bytes.sent").Value()) /
		d.Now().Seconds() / 1024
	d.Stop()
	return egress
}

// BenchmarkE12MegaEvent measures steady tiered fan-out for the mega-event
// venue: 256 remote users on a 16x16 seat grid at 3.2 m pitch (nearly every
// pair beyond NearRadius), the first user pinned focus as the performer,
// fan-out ticking at the clients' 20 Hz upload rate. cloud-egress-KB/s is
// the gated headline: it must stay at the decimated tier mix (far 1/4,
// ambient 1/8 with per-source phase stagger), a fraction of the broadcast
// cost E12's table reports — regressions that re-admit the crowd at full
// rate move this number, not just ns/op.
func BenchmarkE12MegaEvent(b *testing.B) {
	d, err := classroom.NewDeployment(classroom.Config{
		Seed: benchSeed, EnableInterest: true, TickHz: 20,
		VRRows: 16, VRCols: 16, VRPitch: 3.2,
	})
	if err != nil {
		b.Fatal(err)
	}
	link := netsim.ResidentialBroadband(25 * time.Millisecond)
	var performer classroom.ParticipantID
	for i := 0; i < 256; i++ {
		_, id, err := d.AddRemoteLearner(fmt.Sprintf("crowd-%03d", i), trace.Seated{
			Anchor: mathx.V3(float64(i%16)*3.2, 0, float64(i/16)*3.2), Phase: float64(i),
		}, link)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			performer = id
		}
	}
	d.Cloud().PinFocus(performer)
	// Warm until everyone is seated and past their snapshot ramp, so the
	// timed window measures steady decimated deltas only.
	if err := d.Run(time.Second); err != nil {
		b.Fatal(err)
	}
	egress0 := d.Cloud().Metrics().Counter("sync.bytes.sent").Value()
	t0 := d.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	egress := float64(d.Cloud().Metrics().Counter("sync.bytes.sent").Value()-egress0) /
		(d.Now() - t0).Seconds() / 1024
	b.ReportMetric(egress, "cloud-egress-KB/s")
}

// BenchmarkE6Render evaluates the full C3 plan/device/complexity grid.
func BenchmarkE6Render(b *testing.B) {
	cfg := render.PipelineConfig{RTT: 40 * time.Millisecond}
	var holds int
	for i := 0; i < b.N; i++ {
		holds = 0
		for _, n := range []int64{10, 30, 60} {
			for _, plan := range render.Plans() {
				rep := render.Evaluate(plan, render.DeviceStandalone, n*500_000, n*5_000, cfg, 0.6)
				if rep.LocalFrameTime <= time.Second/72 {
					holds++
				}
			}
		}
	}
	b.ReportMetric(float64(holds), "configs-holding-72Hz")
}

// BenchmarkE7Video streams one simulated second of FEC-protected lecture
// video over a 3%-loss link per iteration.
func BenchmarkE7Video(b *testing.B) {
	table := experiments.E7Video // ensure the full table stays reachable
	_ = table
	for i := 0; i < b.N; i++ {
		benchVideoSecond(b)
	}
}

func benchVideoSecond(b *testing.B) {
	b.Helper()
	sim, net := newBenchNet(b)
	cfg := video.StreamConfig{Strategy: video.StrategyFEC, K: 8, R: 3}
	var receiver *video.Receiver
	sender := video.NewSender(sim, cfg, func(c *protocol.VideoChunk) {
		if frame, err := protocol.Encode(c); err == nil {
			_ = net.Send("tx", "rx", frame)
		}
	})
	receiver = video.NewReceiver(sim, cfg, nil)
	_ = net.Bind("rx", netsim.HandlerFunc(func(_ netsim.Addr, payload []byte) {
		if msg, _, err := protocol.Decode(payload); err == nil {
			if c, ok := msg.(*protocol.VideoChunk); ok {
				receiver.HandleChunk(c)
			}
		}
	}))
	sender.Start()
	if err := sim.Run(time.Second); err != nil {
		b.Fatal(err)
	}
	sender.Stop()
}

func newBenchNet(b *testing.B) (*vclock.Sim, *netsim.Network) {
	b.Helper()
	sim := vclock.New(benchSeed)
	net := netsim.New(sim)
	if err := net.AddHost("tx", nil); err != nil {
		b.Fatal(err)
	}
	if err := net.AddHost("rx", nil); err != nil {
		b.Fatal(err)
	}
	if err := net.ConnectBoth("tx", "rx", netsim.LinkConfig{
		Latency: 20 * time.Millisecond, LossRate: 0.03}); err != nil {
		b.Fatal(err)
	}
	return sim, net
}

// BenchmarkE8Sickness evaluates the fuzzy predictor over the full C5 grid.
func BenchmarkE8Sickness(b *testing.B) {
	profile := sickness.DefaultProfile()
	var sum float64
	for i := 0; i < b.N; i++ {
		for _, lat := range []time.Duration{20, 80, 150, 250} {
			for _, fps := range []float64{90, 45, 20} {
				sum += sickness.Predict(sickness.Conditions{
					MotionToPhoton: lat * time.Millisecond,
					FrameRateHz:    fps, FOVDegrees: 100, NavSpeed: 1.5,
				}, profile)
			}
		}
	}
	b.ReportMetric(sum/float64(b.N)/12, "mean-sickness-score")
}

// BenchmarkE9DeadReckoning reconstructs 30 s of walker motion from 10 Hz
// updates with linear dead reckoning per iteration.
func BenchmarkE9DeadReckoning(b *testing.B) {
	script := trace.Walker{Waypoints: []mathx.Vec3{{}, {X: 6}, {X: 6, Z: 4}, {Z: 4}}, Speed: 1.4}
	for i := 0; i < b.N; i++ {
		buf := pose.NewInterpBuffer(0, 64, pose.Linear{})
		next := time.Duration(0)
		for at := time.Duration(0); at < 30*time.Second; at += 10 * time.Millisecond {
			for next <= at {
				buf.Push(script.PoseAt(next))
				next += 100 * time.Millisecond
			}
			if _, ok := buf.Sample(at); !ok {
				b.Fatal("no sample")
			}
		}
	}
}

// BenchmarkE10Fusion runs one second of 2-source sensor fusion per
// iteration.
func BenchmarkE10Fusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := vclock.New(benchSeed)
		script := trace.Seated{Anchor: mathx.V3(1, 0, 2)}
		f := fusion.New(fusion.Config{})
		sink := func(o sensors.Observation) { f.Observe(o) }
		h := sensors.NewHeadset("p", sim, script, sensors.HeadsetConfig{}, sink)
		arr := sensors.NewArray(3, 10, 8, sim, sensors.RoomSensorConfig{}, sink)
		arr.Track("p", script)
		h.Start()
		arr.Start()
		if err := sim.Run(time.Second); err != nil {
			b.Fatal(err)
		}
		if _, ok := f.Estimate(sim.Now()); !ok {
			b.Fatal("fusion produced no estimate")
		}
	}
}

func buildBenchDeployment(b *testing.B, localsPerCampus, remotes int) (*classroom.Deployment, *classroom.Campus) {
	b.Helper()
	d, err := classroom.NewDeployment(classroom.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	gz, err := d.AddCampus("gz", 1)
	if err != nil {
		b.Fatal(err)
	}
	cwb, err := d.AddCampus("cwb", 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.ConnectCampuses(gz, cwb); err != nil {
		b.Fatal(err)
	}
	if _, err := gz.AddEducator("prof", trace.Lecturer{
		Left: mathx.V3(-3, 0, 0), Right: mathx.V3(3, 0, 0)}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < localsPerCampus; i++ {
		anchor := mathx.V3(float64(i%8)-3.5, 0, 2+float64(i/8)*1.2)
		if _, err := gz.AddLearner("s", trace.Seated{Anchor: anchor, Phase: float64(i)}); err != nil {
			b.Fatal(err)
		}
		if _, err := cwb.AddLearner("s", trace.Seated{Anchor: anchor, Phase: float64(i) + 0.4}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < remotes; i++ {
		if _, _, err := d.AddRemoteLearner("r", trace.Seated{Phase: float64(i)},
			netsim.ResidentialBroadband(30*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}
	return d, gz
}

// sinkTransport is a Transport that counts and releases every frame — the
// minimal backend for benchmarking the fan-out encode path with no
// simulated network in the way.
type sinkTransport struct{ frames, bytes uint64 }

func (s *sinkTransport) SendFrame(_ endpoint.Addr, f *protocol.Frame) error {
	s.frames++
	s.bytes += uint64(f.Len())
	f.Release()
	return nil
}
func (s *sinkTransport) LocalAddr() endpoint.Addr     { return "bench-sink" }
func (s *sinkTransport) Bind(endpoint.Receiver) error { return nil }
func (s *sinkTransport) Close() error                 { return nil }

func benchEntity(id int, x float64) protocol.EntityState {
	return protocol.EntityState{
		Participant: protocol.ParticipantID(id),
		Pose:        protocol.QuantizePose(mathx.V3(x, 0, x*0.5), mathx.QuatIdentity()),
	}
}

// buildPlanFixture assembles a store and replicator loaded like a busy cloud
// tick — 192 entities and 96 peers, a third interest-filtered (per-peer
// builds and singleton cohorts) and the rest unfiltered across six distinct
// ack baselines (shared delta cohorts) — pre-warmed past first-contact
// snapshots. step advances one tick: churn a quarter of the entities and
// re-ack every peer at its fixed lag, so each iteration plans the same
// amount of work.
func buildPlanFixture(b *testing.B, pool *work.Pool) (*core.Replicator, func()) {
	b.Helper()
	s := core.NewStore()
	r := core.NewReplicator(s, core.ReplConfig{Pool: pool})
	evens := func(id protocol.ParticipantID, _ uint64) bool { return id%2 == 0 }
	thirds := func(id protocol.ParticipantID, _ uint64) bool { return id%3 != 0 }
	for i := 0; i < 96; i++ {
		var f core.FilterFunc
		if i%3 == 0 {
			if i%2 == 0 {
				f = evens
			} else {
				f = thirds
			}
		}
		if err := r.AddPeer(fmt.Sprintf("peer-%03d", i), f); err != nil {
			b.Fatal(err)
		}
	}
	var peerBuf []string
	ack := func() {
		peerBuf = r.PeersAppend(peerBuf[:0])
		tick := s.Tick()
		for i, id := range peerBuf {
			lag := uint64(i%6) * 2
			if tick > lag {
				if err := r.Ack(id, tick-lag); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	step := func() {
		s.BeginTick()
		tick := s.Tick()
		for i := 0; i < 48; i++ {
			id := 1 + int((tick*7+uint64(i)*11)%192)
			s.Upsert(benchEntity(id, float64((tick+uint64(i))%40)))
		}
		ack()
	}
	s.BeginTick()
	for i := 1; i <= 192; i++ {
		s.Upsert(benchEntity(i, float64(i%40)))
	}
	_ = r.PlanTick() // first-contact snapshots
	ack()
	for i := 0; i < 12; i++ { // settle into steady-state deltas
		step()
		_ = r.PlanTick()
	}
	return r, step
}

// BenchmarkPlanTick measures the replication planner alone at pool widths
// 1, 2, and 4: width 1 is the serial legacy path; wider pools shard the
// filtered per-peer and ack-cohort builds and pay only the deterministic
// merge on top. The plan is byte-identical at every width (the
// TestParallelPlanMatchesSerial contract), so ns/op is the only thing that
// may move.
func BenchmarkPlanTick(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := work.New(workers)
			defer pool.Close()
			r, step := buildPlanFixture(b, pool)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
				if plan := r.PlanTick(); len(plan) == 0 {
					b.Fatal("empty plan")
				}
			}
		})
	}
}

// BenchmarkFanout measures the dispatcher's cohort encode + send walk over
// a fixed ~40-cohort plan at pool widths 1, 2, and 4, against a sink
// transport. Wider pools pre-encode the distinct cohorts in parallel; the
// send walk stays in plan order on the caller.
func BenchmarkFanout(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := work.New(workers)
			defer pool.Close()
			r, step := buildPlanFixture(b, pool)
			sink := &sinkTransport{}
			d, err := endpoint.NewDispatcher(sink, metrics.NewRegistry("bench"), endpoint.Config{Pool: pool})
			if err != nil {
				b.Fatal(err)
			}
			step()
			plan := r.PlanTick()
			if len(plan) == 0 {
				b.Fatal("empty plan")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Fanout(plan)
			}
			b.StopTimer()
			d.ReleaseFrames()
			if sink.frames == 0 {
				b.Fatal("fanout sent nothing")
			}
			b.ReportMetric(float64(sink.bytes)/float64(b.N), "bytes/op")
		})
	}
}
